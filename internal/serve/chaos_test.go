package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/golitho/hsd/internal/faultinject"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/resilience"
)

// fallbackDetector is the distinguishable shallow detector of the chaos
// cascade tests.
type fallbackDetector struct{ thresholdDetector }

func (fallbackDetector) Name() string { return "shallow-fallback" }

func postScore(t *testing.T, url string) (*http.Response, ScoreResponse) {
	t.Helper()
	resp, err := http.Post(url+"/score", "text/plain",
		gltBody(t, geom.R(0, 0, 1024, 1024)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ScoreResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func metricsText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestChaosPrimaryPanicsDegrade injects unlimited panics into the
// primary detector and asserts the cascade absorbs them: every request
// is answered 200 with a degraded fallback verdict, zero 5xx, the
// breaker opens, and the telemetry tells the story at GET /metrics.
func TestChaosPrimaryPanicsDegrade(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	s, err := NewServer(Options{
		Primary:  thresholdDetector{},
		Fallback: fallbackDetector{},
		Breaker:  resilience.BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	faultinject.Set(PrimarySite, faultinject.Fault{Panic: "chaos: primary scoring bug"})

	const n = 10
	for i := 0; i < n; i++ {
		resp, out := postScore(t, ts.URL)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d, want 200 degraded", i, resp.StatusCode)
		}
		if !out.Degraded || out.Detector != "shallow-fallback" {
			t.Fatalf("request %d: %+v, want degraded fallback verdict", i, out)
		}
		if !out.Hotspot { // the dense clip is a hotspot under the fallback too
			t.Fatalf("request %d: degraded verdict lost the hotspot: %+v", i, out)
		}
		// Before the breaker opens the reason is the panic; after, the
		// primary is not even tried.
		if i < 3 && out.DegradedReason != "panic" {
			t.Fatalf("request %d: reason = %q, want panic", i, out.DegradedReason)
		}
		if i >= 3 && out.DegradedReason != "breaker-open" {
			t.Fatalf("request %d: reason = %q, want breaker-open", i, out.DegradedReason)
		}
	}
	// Only the pre-breaker requests ever reached the primary.
	if got := faultinject.Fired(PrimarySite); got != 3 {
		t.Fatalf("primary fired %d times, want 3 (then breaker opened)", got)
	}

	text := metricsText(t, ts.URL)
	for _, want := range []string{
		"hotspot_breaker_state 2",
		fmt.Sprintf("hotspot_fallbacks_total %d", n),
		"hotspot_primary_failures_total 3",
		fmt.Sprintf(`http_requests_total{code="200",endpoint="/score"} %d`, n),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n---\n%s", want, text)
		}
	}
	for _, reject := range []string{`code="500"`, `code="502"`, `code="503"`} {
		if strings.Contains(text, reject) {
			t.Errorf("metrics contain a 5xx (%s) under chaos with a fallback\n---\n%s", reject, text)
		}
	}
}

// TestChaosPrimaryLatencyDeadline injects latency beyond the request
// deadline budget: requests degrade with reason "deadline".
func TestChaosPrimaryLatencyDeadline(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	s, err := NewServer(Options{
		Primary:        thresholdDetector{},
		Fallback:       fallbackDetector{},
		DeadlineBudget: 25 * time.Millisecond,
		Breaker:        resilience.BreakerConfig{FailureThreshold: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	faultinject.Set(PrimarySite, faultinject.Fault{Latency: 300 * time.Millisecond, Count: 2})
	for i := 0; i < 2; i++ {
		resp, out := postScore(t, ts.URL)
		if resp.StatusCode != http.StatusOK || !out.Degraded || out.DegradedReason != "deadline" {
			t.Fatalf("request %d: status=%d %+v, want degraded deadline verdict", i, resp.StatusCode, out)
		}
	}
	// Fault exhausted: the primary answers again, undegraded.
	resp, out := postScore(t, ts.URL)
	if resp.StatusCode != http.StatusOK || out.Degraded {
		t.Fatalf("post-chaos: status=%d %+v, want healthy primary verdict", resp.StatusCode, out)
	}
}

// TestChaosBreakerRecovery walks the full degradation and recovery arc
// on a fake clock: failures open the breaker, the cool-down elapses, a
// half-open probe succeeds, and the primary serves again.
func TestChaosBreakerRecovery(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	clk := resilience.NewFakeClock(time.Unix(0, 0))
	s, err := NewServer(Options{
		Primary:  thresholdDetector{},
		Fallback: fallbackDetector{},
		Breaker:  resilience.BreakerConfig{FailureThreshold: 2, OpenTimeout: 30 * time.Second},
		Clock:    clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	readyStatus := func() ReadyResponse {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out ReadyResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if r := readyStatus(); r.Status != "ready" || r.Breaker != "closed" || r.Fallback != "shallow-fallback" {
		t.Fatalf("initial readyz = %+v", r)
	}

	// Two injected failures trip the breaker.
	faultinject.Set(PrimarySite, faultinject.Fault{Err: fmt.Errorf("chaos error"), Count: 2})
	for i := 0; i < 2; i++ {
		if _, out := postScore(t, ts.URL); !out.Degraded || out.DegradedReason != "error" {
			t.Fatalf("request %d: %+v, want degraded error verdict", i, out)
		}
	}
	if r := readyStatus(); r.Status != "degraded" || r.Breaker != "open" {
		t.Fatalf("post-trip readyz = %+v, want degraded/open", r)
	}

	// While open, the primary is bypassed without being called.
	if _, out := postScore(t, ts.URL); out.DegradedReason != "breaker-open" {
		t.Fatalf("open-breaker verdict = %+v", out)
	}
	if got := faultinject.Fired(PrimarySite); got != 2 {
		t.Fatalf("primary called %d times, want 2", got)
	}

	// Cool-down elapses; the next request is the probe, the fault is
	// exhausted, so it succeeds and closes the breaker.
	clk.Advance(31 * time.Second)
	if _, out := postScore(t, ts.URL); out.Degraded {
		t.Fatalf("probe verdict = %+v, want healthy primary", out)
	}
	if r := readyStatus(); r.Status != "ready" || r.Breaker != "closed" {
		t.Fatalf("recovered readyz = %+v, want ready/closed", r)
	}
}

// TestChaosShedding fills the admission bucket on a frozen clock: the
// overflow request gets 429 + Retry-After before any scoring work, and
// requests_shed_total records it.
func TestChaosShedding(t *testing.T) {
	clk := resilience.NewFakeClock(time.Unix(0, 0))
	s, err := NewServer(Options{
		Primary:   thresholdDetector{},
		ShedRate:  1,
		ShedBurst: 2,
		Clock:     clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 2; i++ {
		if resp, _ := postScore(t, ts.URL); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d inside burst: status = %d", i, resp.StatusCode)
		}
	}
	resp, _ := postScore(t, ts.URL)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if got := s.Metrics().Counter("requests_shed_total").Value(); got != 1 {
		t.Fatalf("requests_shed_total = %v, want 1", got)
	}
	// Tokens refill once the clock advances.
	clk.Advance(time.Second)
	if resp, _ := postScore(t, ts.URL); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refill status = %d", resp.StatusCode)
	}
}

// TestChaosNoFallback: without a fallback the pre-breaker failures are
// 5xx (the documented exception) and the open breaker yields 503 with
// Retry-After; /readyz reports unavailable.
func TestChaosNoFallback(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	s, err := NewServer(Options{
		Primary: thresholdDetector{},
		Breaker: resilience.BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	faultinject.Set(PrimarySite, faultinject.Fault{Err: fmt.Errorf("chaos error")})
	for i := 0; i < 2; i++ {
		if resp, _ := postScore(t, ts.URL); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("pre-breaker request %d: status = %d, want 500", i, resp.StatusCode)
		}
	}
	resp, _ := postScore(t, ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	readyResp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer readyResp.Body.Close()
	if readyResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz status = %d, want 503", readyResp.StatusCode)
	}
}

// TestChaosBatchPanicDegrades: a panic inside a coalesced batch's
// primary pass degrades every request of that batch to the fallback —
// all 200 with degraded:true, zero 5xx — and the batch after the fault
// clears is served healthy by the primary.
func TestChaosBatchPanicDegrades(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	s, err := NewServer(Options{
		Primary:      thresholdDetector{},
		Fallback:     fallbackDetector{},
		Breaker:      resilience.BreakerConfig{FailureThreshold: 100},
		BatchMaxSize: 3,
		BatchMaxWait: 30 * time.Second, // flush only when full
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// One panic: exactly the first batch's shared primary pass fails.
	faultinject.Set(PrimarySite, faultinject.Fault{Panic: "chaos: batch scoring bug", Count: 1})

	runBatch := func() []ScoreResponse {
		var wg sync.WaitGroup
		outs := make([]ScoreResponse, 3)
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, out := postBatch(t, ts.URL)
				if resp.StatusCode != http.StatusOK {
					outs[i] = ScoreResponse{Detector: fmt.Sprintf("status=%d", resp.StatusCode)}
					return
				}
				outs[i] = out
			}(i)
		}
		wg.Wait()
		return outs
	}

	for i, out := range runBatch() {
		if !out.Degraded || out.DegradedReason != "panic" || out.Detector != "shallow-fallback" {
			t.Fatalf("faulted batch request %d: %+v, want degraded panic verdict", i, out)
		}
		if !out.Hotspot {
			t.Fatalf("faulted batch request %d lost the hotspot: %+v", i, out)
		}
	}
	for i, out := range runBatch() {
		if out.Degraded || out.Detector != "density-threshold" {
			t.Fatalf("post-chaos batch request %d: %+v, want healthy primary verdict", i, out)
		}
	}
	text := metricsText(t, ts.URL)
	for _, reject := range []string{`code="500"`, `code="502"`, `code="503"`} {
		if strings.Contains(text, reject) {
			t.Errorf("metrics contain a 5xx (%s) under batch chaos with a fallback\n---\n%s", reject, text)
		}
	}
}

// TestChaosBatchBreakerOpen: batches arriving while the breaker is open
// skip the primary entirely and degrade with reason "breaker-open".
func TestChaosBatchBreakerOpen(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	s, err := NewServer(Options{
		Primary:      thresholdDetector{},
		Fallback:     fallbackDetector{},
		Breaker:      resilience.BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Hour},
		BatchMaxSize: 2,
		BatchMaxWait: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	faultinject.Set(PrimarySite, faultinject.Fault{Err: fmt.Errorf("chaos error")})

	runBatch := func(wantReason string) {
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, out := postBatch(t, ts.URL)
				if resp.StatusCode != http.StatusOK || !out.Degraded || out.DegradedReason != wantReason {
					t.Errorf("request %d: status=%d %+v, want degraded %q", i, resp.StatusCode, out, wantReason)
				}
			}(i)
		}
		wg.Wait()
	}
	runBatch("error")        // trips the one-failure breaker
	runBatch("breaker-open") // breaker now bypasses the primary
	// The second batch never reached the primary.
	if got := faultinject.Fired(PrimarySite); got != 1 {
		t.Fatalf("primary fired %d times, want 1", got)
	}
}

// TestChaosVerifyFault: injected oracle faults surface as 500 on
// /verify (no fallback exists for verification) and clear cleanly.
func TestChaosVerifyFault(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	ts := newTestServer(t, true)

	faultinject.Set("lithosim.simulate", faultinject.Fault{Err: fmt.Errorf("chaos sim error"), Count: 1})
	resp, err := http.Post(ts.URL+"/verify", "text/plain",
		gltBody(t, geom.R(0, 400, 1024, 500), geom.R(0, 536, 1024, 636)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("fault status = %d, want 500", resp.StatusCode)
	}
	// Fault cleared: verification works again.
	resp2, err := http.Post(ts.URL+"/verify", "text/plain",
		gltBody(t, geom.R(0, 400, 1024, 500), geom.R(0, 536, 1024, 636)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos verify status = %d, want 200", resp2.StatusCode)
	}
}

// TestReadyzStateMatrix pins the full /readyz contract across all three
// states, driving the breaker through forced transitions on a fake
// clock. With a fallback configured the posture walks ready -> degraded
// -> ready; without one the open breaker reports unavailable with 503.
func TestReadyzStateMatrix(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	readyz := func(t *testing.T, url string) (int, ReadyResponse) {
		t.Helper()
		resp, err := http.Get(url + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out ReadyResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}
	trip := func(t *testing.T, url string, n int) {
		t.Helper()
		faultinject.Set(PrimarySite, faultinject.Fault{Err: fmt.Errorf("chaos error"), Count: n})
		for i := 0; i < n; i++ {
			resp, _ := postScore(t, url)
			resp.Body.Close()
		}
	}

	t.Run("with-fallback", func(t *testing.T) {
		faultinject.Reset()
		t.Cleanup(faultinject.Reset)
		clk := resilience.NewFakeClock(time.Unix(0, 0))
		s, err := NewServer(Options{
			Primary:  thresholdDetector{},
			Fallback: fallbackDetector{},
			Breaker:  resilience.BreakerConfig{FailureThreshold: 2, OpenTimeout: 10 * time.Second},
			Clock:    clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)

		if code, r := readyz(t, ts.URL); code != http.StatusOK || r.Status != "ready" || r.Breaker != "closed" {
			t.Fatalf("initial: code=%d %+v, want 200 ready/closed", code, r)
		}
		trip(t, ts.URL, 2)
		if code, r := readyz(t, ts.URL); code != http.StatusOK || r.Status != "degraded" || r.Breaker != "open" {
			t.Fatalf("tripped: code=%d %+v, want 200 degraded/open", code, r)
		}
		// Degraded still answers 200 so load balancers keep routing to
		// the fallback; only unavailable drops to 503.
		clk.Advance(11 * time.Second)
		if resp, out := postScore(t, ts.URL); out.Degraded {
			resp.Body.Close()
			t.Fatalf("half-open probe degraded: %+v", out)
		}
		if code, r := readyz(t, ts.URL); code != http.StatusOK || r.Status != "ready" || r.Breaker != "closed" {
			t.Fatalf("recovered: code=%d %+v, want 200 ready/closed", code, r)
		}
	})

	t.Run("no-fallback", func(t *testing.T) {
		faultinject.Reset()
		t.Cleanup(faultinject.Reset)
		clk := resilience.NewFakeClock(time.Unix(0, 0))
		s, err := NewServer(Options{
			Primary: thresholdDetector{},
			Breaker: resilience.BreakerConfig{FailureThreshold: 2, OpenTimeout: 10 * time.Second},
			Clock:   clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)

		if code, r := readyz(t, ts.URL); code != http.StatusOK || r.Status != "ready" {
			t.Fatalf("initial: code=%d %+v, want 200 ready", code, r)
		}
		trip(t, ts.URL, 2)
		code, r := readyz(t, ts.URL)
		if code != http.StatusServiceUnavailable || r.Status != "unavailable" || r.Breaker != "open" {
			t.Fatalf("tripped: code=%d %+v, want 503 unavailable/open", code, r)
		}
		if r.Fallback != "" {
			t.Fatalf("no-fallback server advertises fallback %q", r.Fallback)
		}
		// Recovery works without a fallback too: cool-down, successful
		// probe, ready again.
		clk.Advance(11 * time.Second)
		if resp, _ := postScore(t, ts.URL); resp.StatusCode != http.StatusOK {
			t.Fatalf("probe status = %d, want 200", resp.StatusCode)
		}
		if code, r := readyz(t, ts.URL); code != http.StatusOK || r.Status != "ready" || r.Breaker != "closed" {
			t.Fatalf("recovered: code=%d %+v, want 200 ready/closed", code, r)
		}
	})
}
