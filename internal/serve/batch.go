// POST /batch micro-batching: concurrent score requests are coalesced
// into one vectorized pass through the primary detector.
//
// The first request of a window becomes the batch leader; followers
// append themselves and wait. The leader flushes when the batch reaches
// Options.BatchMaxSize or Options.BatchMaxWait elapses, whichever comes
// first, scoring every collected clip in a single BatchScorer call
// behind the same breaker/deadline/fallback cascade as /score. Scores
// are identical to /score (the batched inference path is bit-equal to
// the serial one), so batching changes latency, never verdicts.

package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/faultinject"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/qualitymon"
	"github.com/golitho/hsd/internal/resilience"
	"github.com/golitho/hsd/internal/trace"
)

// batchResult is one request's outcome, delivered on its done channel.
type batchResult struct {
	resp ScoreResponse
	err  error
}

// batchItem is one request waiting in a pending batch.
type batchItem struct {
	clip layout.Clip
	ctx  context.Context
	done chan batchResult // buffered; flush never blocks on delivery
}

// pendingBatch collects items until it is flushed by its leader.
type pendingBatch struct {
	items []*batchItem
	full  chan struct{} // closed when the batch reaches maxSize
}

// batcher coalesces submissions into pending batches. There is no
// background goroutine: the leader request drives the flush, so the
// batcher needs no lifecycle management.
type batcher struct {
	srv     *Server
	maxSize int
	maxWait time.Duration
	clock   resilience.Clock

	mu  sync.Mutex
	cur *pendingBatch
}

// submit enqueues one clip and blocks until its batch is scored or ctx
// is done. Cancelled submissions stop waiting immediately; the flusher
// later skips them without scoring.
func (b *batcher) submit(ctx context.Context, clip layout.Clip) (ScoreResponse, error) {
	item := &batchItem{clip: clip, ctx: ctx, done: make(chan batchResult, 1)}
	b.mu.Lock()
	leader := b.cur == nil
	if leader {
		b.cur = &pendingBatch{full: make(chan struct{})}
	}
	pb := b.cur
	pb.items = append(pb.items, item)
	if len(pb.items) >= b.maxSize {
		// Full: detach so the next submission opens a fresh batch, and
		// wake the leader without waiting out the batch window.
		b.cur = nil
		close(pb.full)
	}
	b.mu.Unlock()

	if sp := trace.FromContext(ctx); sp != nil {
		if leader {
			sp.AddEvent("batch-leader")
		} else {
			sp.AddEvent("batch-follower")
		}
	}
	if leader {
		select {
		case <-pb.full:
		case <-b.clock.After(b.maxWait):
			b.detach(pb)
		case <-ctx.Done():
			// A cancelled leader still owes its followers a flush.
			b.detach(pb)
		}
		b.flush(ctx, pb)
	}
	select {
	case res := <-item.done:
		return res.resp, res.err
	case <-ctx.Done():
		return ScoreResponse{}, ctx.Err()
	}
}

// detach removes pb from the collection slot (if still there) so the
// next submission opens a fresh batch.
func (b *batcher) detach(pb *pendingBatch) {
	b.mu.Lock()
	if b.cur == pb {
		b.cur = nil
	}
	b.mu.Unlock()
}

// flush scores a detached batch and delivers per-item results. Items
// whose context is already done are answered with that error and
// excluded from the scoring pass. The pass runs under a "batch.flush"
// span on the leader's trace; follower traces record their membership
// via the batch-follower event instead.
func (b *batcher) flush(ctx context.Context, pb *pendingBatch) {
	live := make([]*batchItem, 0, len(pb.items))
	for _, it := range pb.items {
		if err := it.ctx.Err(); err != nil {
			it.done <- batchResult{err: err}
			continue
		}
		live = append(live, it)
	}
	if len(live) == 0 {
		return
	}
	fctx, fsp := trace.Start(ctx, "batch.flush")
	fsp.SetAttrInt("size", len(live))
	b.srv.batchSize.Observe(float64(len(live)))
	start := b.clock.Now()
	b.srv.batchCascade(fctx, live)
	b.srv.batchLatency.ObserveDuration(b.clock.Now().Sub(start))
	fsp.End()
}

// batchCascade is the /score degradation ladder applied to a whole
// batch: primary (vectorized, behind breaker + budget + panic capture),
// then per-item fallback. One primary failure degrades every request in
// the batch — the requests shared the failed pass — but never 5xxes
// them while a fallback exists.
func (s *Server) batchCascade(ctx context.Context, items []*batchItem) {
	clips := make([]layout.Clip, len(items))
	for i, it := range items {
		clips[i] = it.clip
	}
	prim := s.primary.Load()
	var primaryErr error
	reason := ""
	if s.breaker.Allow() {
		var scores []float64
		pctx, psp := trace.Start(ctx, "primary", trace.A("detector", prim.det.Name()))
		scores, primaryErr = s.scoreBatchPrimary(pctx, prim, clips)
		psp.SetError(primaryErr)
		psp.End()
		s.breaker.Record(primaryErr)
		s.reportOutcome(primaryErr)
		if primaryErr == nil {
			name, thr := prim.det.Name(), prim.det.Threshold()
			for i, it := range items {
				s.quality.Observe(qualitymon.Event{
					Detector: name, Stage: "primary",
					Score: scores[i], Threshold: thr,
					Clip: it.clip, HasClip: true,
				})
				it.done <- batchResult{resp: ScoreResponse{
					Detector: name, Score: scores[i],
					Threshold: thr, Hotspot: scores[i] >= thr,
				}}
			}
			return
		}
		s.primaryErrs.Inc()
		reason = degradedReason(primaryErr)
	} else {
		primaryErr = resilience.ErrOpen
		reason = "breaker-open"
		trace.FromContext(ctx).AddEvent("breaker-open")
	}
	// The whole batch degrades together: mark every member's own trace,
	// not just the leader's, so each request's record explains itself.
	for _, it := range items {
		if sp := trace.FromContext(it.ctx); sp != nil {
			sp.AddEvent("degrade", trace.A("reason", reason))
			sp.SetFlag(trace.FlagDegraded)
		}
	}
	if s.fallback == nil {
		for _, it := range items {
			it.done <- batchResult{err: primaryErr}
		}
		return
	}
	name, thr := s.fallback.det.Name(), s.fallback.det.Threshold()
	fctx, fsp := trace.Start(ctx, "fallback", trace.A("detector", name))
	defer fsp.End()
	for _, it := range items {
		score, err := s.fallback.score(fctx, it.clip)
		if err != nil {
			it.done <- batchResult{err: fmt.Errorf("fallback (after primary %s): %w", reason, err)}
			continue
		}
		s.fallbacks.Inc()
		s.quality.Observe(qualitymon.Event{
			Detector: name, Stage: "fallback",
			Score: score, Threshold: thr,
			Clip: it.clip, HasClip: true,
		})
		it.done <- batchResult{resp: ScoreResponse{
			Detector: name, Score: score,
			Threshold: thr, Hotspot: score >= thr,
			Degraded: true, DegradedReason: reason,
		}}
	}
}

// scoreBatchPrimary runs prim's batch path under a fresh deadline
// budget (the batch outlives any single request context, so only the
// parent's values — the trace span — survive, not its cancellation),
// converting panics to errors exactly like scorePrimary.
func (s *Server) scoreBatchPrimary(parent context.Context, prim *scorer, clips []layout.Clip) ([]float64, error) {
	ctx, cancel := resilience.WithBudget(context.WithoutCancel(parent), s.opts.DeadlineBudget)
	defer cancel()
	type outcome struct {
		scores []float64
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				s.panics.Inc()
				ch <- outcome{nil, &panicError{val: p}}
			}
		}()
		if err := faultinject.Hit(PrimarySite); err != nil {
			ch <- outcome{nil, err}
			return
		}
		scores, err := prim.scoreBatch(ctx, clips)
		ch <- outcome{scores, err}
	}()
	select {
	case out := <-ch:
		return out.scores, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// scoreBatch scores clips through the detector's vectorized path when
// it has one (core.BatchScorer is concurrent-safe by contract) and the
// serialized clone path otherwise.
func (s *scorer) scoreBatch(ctx context.Context, clips []layout.Clip) ([]float64, error) {
	if _, ok := s.det.(core.BatchScorer); ok {
		return core.ScoreClipsCtx(ctx, s.det, clips)
	}
	if s.clone != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		return core.ScoreClipsCtx(ctx, s.clone, clips)
	}
	return core.ScoreClipsCtx(ctx, s.det, clips)
}

// handleBatch is POST /batch: one clip per request, scored through the
// micro-batcher. The response schema matches /score.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.admit(w, r) {
		return
	}
	clip, err := s.readClip(w, r)
	if err != nil {
		clipError(w, err)
		return
	}
	resp, err := s.batch.submit(r.Context(), clip)
	if err != nil {
		s.cascadeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
