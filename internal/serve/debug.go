// Debug surfaces: retained-trace inspection and profiling.
//
// GET /debug/traces        -> JSON list of retained traces (?limit=N),
//                             or one full trace with ?id=<hex trace id>
// GET /debug/traces/chrome -> the same traces in Chrome trace_event
//                             format, loadable in about:tracing and
//                             https://ui.perfetto.dev (?limit=N, ?id=)
//
// The trace endpoints are registered on the main handler when tracing
// is enabled. DebugMux additionally wires net/http/pprof; it is meant
// for a separate, non-public listener (hsdserve -debug-addr), since
// profiles and traces expose internals no tenant should see.

package serve

import (
	"net/http"
	"net/http/pprof"
	"strconv"

	"github.com/golitho/hsd/internal/trace"
)

// tracesResponse is the GET /debug/traces list reply.
type tracesResponse struct {
	// Enabled is false when the tracer was toggled off at runtime.
	Enabled bool `json:"enabled"`
	// Kept and SampledOut are cumulative tail-sampling counters.
	Kept       int64 `json:"kept"`
	SampledOut int64 `json:"sampledOut"`
	// Traces are the retained traces, most recent first.
	Traces []*trace.TraceRecord `json:"traces"`
}

// debugTraces resolves the traces selected by the request query:
// ?id=<hex> for a single trace, else the most recent ?limit= (default
// 64, 0 = all). It writes the error response itself when returning nil
// with ok=false.
func (s *Server) debugTraces(w http.ResponseWriter, r *http.Request) ([]*trace.TraceRecord, bool) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return nil, false
	}
	if s.tracer == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return nil, false
	}
	if idStr := r.URL.Query().Get("id"); idStr != "" {
		id, err := trace.ParseTraceID(idStr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return nil, false
		}
		rec := s.tracer.Get(id)
		if rec == nil {
			http.Error(w, "trace not found (evicted or sampled out)", http.StatusNotFound)
			return nil, false
		}
		return []*trace.TraceRecord{rec}, true
	}
	limit := 64
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
			return nil, false
		}
		limit = n
	}
	return s.tracer.Traces(limit), true
}

// handleTraces is GET /debug/traces.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	traces, ok := s.debugTraces(w, r)
	if !ok {
		return
	}
	st := s.tracer.Stats()
	writeJSON(w, http.StatusOK, tracesResponse{
		Enabled:    !s.tracer.Disabled(),
		Kept:       st.Kept,
		SampledOut: st.SampledOut,
		Traces:     traces,
	})
}

// handleTracesChrome is GET /debug/traces/chrome: the selected traces
// as a Chrome trace_event JSON array.
func (s *Server) handleTracesChrome(w http.ResponseWriter, r *http.Request) {
	traces, ok := s.debugTraces(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="hsd-trace.json"`)
	_ = trace.WriteChrome(w, traces)
}

// DebugMux returns the handler for a private debug listener: pprof
// under /debug/pprof/ plus the trace endpoints. Profiling endpoints can
// stall the process (heap dumps, CPU profiles), so they are never
// mounted on the serving mux.
func (s *Server) DebugMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	mux.HandleFunc("/debug/traces/chrome", s.handleTracesChrome)
	if s.quality != nil {
		mux.HandleFunc("/debug/quality", s.handleQuality)
	}
	return mux
}
