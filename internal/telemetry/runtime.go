// Go runtime metrics as a pull-style collector: goroutine count, heap
// size, GC pause distribution, and a build-info gauge. Registered via
// OnCollect, so values refresh on every /metrics scrape with no
// background goroutine to manage.

package telemetry

import (
	"runtime"
	"runtime/debug"
)

// GCPauseBuckets covers stop-the-world pauses from microseconds to the
// point where something is badly wrong.
var GCPauseBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1,
}

// runtimeCollector feeds Go runtime stats into a registry.
type runtimeCollector struct {
	goroutines *Gauge
	heapAlloc  *Gauge
	gcPause    *Histogram

	// lastNumGC tracks how far into the PauseNs ring we have already
	// observed, so each completed GC cycle is recorded exactly once.
	lastNumGC uint32
}

// RegisterRuntimeMetrics attaches the Go runtime collector to reg:
//
//	go_goroutines          gauge   current goroutine count
//	go_heap_alloc_bytes    gauge   live heap allocation
//	go_gc_pause_seconds    histogram   stop-the-world pause per GC cycle
//	hotspot_build_info     gauge   constant 1, labeled with go_version
//	                               and vcs revision
//
// Values refresh on every scrape (Snapshot/WritePrometheus), not on a
// timer. Registering twice on the same registry doubles the collection
// work but keeps values correct, since the metric handles are shared;
// callers should still register once.
func RegisterRuntimeMetrics(reg *Registry) {
	reg.SetHelp("go_goroutines", "Number of goroutines that currently exist.")
	reg.SetHelp("go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	reg.SetHelp("go_gc_pause_seconds", "Stop-the-world pause duration per completed GC cycle.")
	reg.SetHelp("hotspot_build_info", "Build metadata; always 1. Labels carry the Go version and VCS revision.")

	c := &runtimeCollector{
		goroutines: reg.Gauge("go_goroutines"),
		heapAlloc:  reg.Gauge("go_heap_alloc_bytes"),
		gcPause:    reg.Histogram("go_gc_pause_seconds", GCPauseBuckets),
	}
	// Seed lastNumGC so pauses from before registration are not
	// retroactively observed.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.lastNumGC = ms.NumGC

	goVersion, revision := BuildInfo()
	reg.Gauge("hotspot_build_info",
		Label{Key: "go_version", Value: goVersion},
		Label{Key: "revision", Value: revision},
	).Set(1)

	reg.OnCollect(c.collect)
}

// collect refreshes the gauges and drains newly completed GC pauses
// from the MemStats ring buffer.
func (c *runtimeCollector) collect() {
	c.goroutines.Set(float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.heapAlloc.Set(float64(ms.HeapAlloc))

	// PauseNs is a ring of the last 256 pauses, indexed by cycle number.
	// Observe the cycles completed since the previous scrape; if more
	// than 256 elapsed, the overwritten ones are gone — record what the
	// ring still holds.
	newGCs := ms.NumGC - c.lastNumGC
	if newGCs > uint32(len(ms.PauseNs)) {
		newGCs = uint32(len(ms.PauseNs))
	}
	for i := uint32(0); i < newGCs; i++ {
		cycle := ms.NumGC - i
		pause := ms.PauseNs[(cycle+255)%256]
		c.gcPause.Observe(float64(pause) / 1e9)
	}
	c.lastNumGC = ms.NumGC
}

// BuildInfo extracts the Go version and VCS revision from the binary's
// embedded build information, with stable fallbacks for test binaries
// and non-VCS builds. These are the same values the hotspot_build_info
// gauge exports as labels, so a CLI's -version output and a running
// server's /metrics can be compared field-for-field.
func BuildInfo() (goVersion, revision string) {
	goVersion = runtime.Version()
	revision = "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return goVersion, revision
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			revision = s.Value
			if len(revision) > 12 {
				revision = revision[:12]
			}
		}
	}
	return goVersion, revision
}
