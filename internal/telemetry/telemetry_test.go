package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	c.AddDuration(500 * time.Millisecond)
	if got := c.Value(); got != 4 {
		t.Fatalf("counter after AddDuration = %v, want 4", got)
	}

	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation
// equal to an upper bound lands in that bucket (le is inclusive), and
// values above every bound land only in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 2.0001, 5, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	// Cumulative: <=1 holds {0.5, 1}; <=2 adds {1.5, 2}; <=5 adds
	// {2.0001, 5}; +Inf adds {100}.
	wantCum := []int64{2, 4, 6}
	for i, want := range wantCum {
		if snap.Counts[i] != want {
			t.Errorf("bucket le=%v count = %d, want %d", snap.UpperBounds[i], snap.Counts[i], want)
		}
	}
	if snap.Count != 7 {
		t.Errorf("count = %d, want 7", snap.Count)
	}
	if want := 0.5 + 1 + 1.5 + 2 + 2.0001 + 5 + 100; snap.Sum != want {
		t.Errorf("sum = %v, want %v", snap.Sum, want)
	}
}

func TestHistogramUnsortedBucketsSorted(t *testing.T) {
	h := newHistogram([]float64{5, 1, 2})
	h.Observe(1.5)
	snap := h.Snapshot()
	if snap.UpperBounds[0] != 1 || snap.UpperBounds[2] != 5 {
		t.Fatalf("bounds not sorted: %v", snap.UpperBounds)
	}
	if snap.Counts[0] != 0 || snap.Counts[1] != 1 {
		t.Fatalf("counts = %v", snap.Counts)
	}
}

// TestConcurrentIncrements exercises every metric type from many
// goroutines; run under -race this is the data-race check for the
// atomic implementations.
func TestConcurrentIncrements(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total")
	g := reg.Gauge("inflight")
	h := reg.Histogram("latency_seconds", []float64{0.01, 0.1, 1})

	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				h.Observe(0.05)
				g.Dec()
				// Get-or-create from other goroutines must return the
				// same instance.
				reg.Counter("ops_total").Add(1)
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != 2*workers*perWorker {
		t.Fatalf("counter = %v, want %d", got, 2*workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestRegistryGetOrCreateByLabels(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("req_total", L("endpoint", "/score"))
	b := reg.Counter("req_total", L("endpoint", "/verify"))
	if a == b {
		t.Fatal("distinct label sets returned the same counter")
	}
	// Label order must not distinguish series.
	c := reg.Counter("multi", L("a", "1"), L("b", "2"))
	d := reg.Counter("multi", L("b", "2"), L("a", "1"))
	if c != d {
		t.Fatal("label order created a second series")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	reg.Gauge("x")
}

// TestWritePrometheusGolden pins the exact text rendering.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.SetHelp("http_requests_total", "Requests by endpoint.")
	reg.Counter("http_requests_total", L("endpoint", "/score")).Add(3)
	reg.Counter("http_requests_total", L("endpoint", "/verify")).Add(1)
	reg.Gauge("inflight").Set(2)
	h := reg.Histogram("latency_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP http_requests_total Requests by endpoint.
# TYPE http_requests_total counter
http_requests_total{endpoint="/score"} 3
http_requests_total{endpoint="/verify"} 1
# TYPE inflight gauge
inflight 2
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 2.55
latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("rendering mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(2)
	reg.Histogram("h", []float64{1}).Observe(0.5)
	snaps := reg.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("len = %d", len(snaps))
	}
	if snaps[0].Name != "a" || snaps[0].Kind != "counter" || snaps[0].Value != 2 {
		t.Fatalf("first = %+v", snaps[0])
	}
	if snaps[1].Histogram == nil || snaps[1].Histogram.Count != 1 {
		t.Fatalf("second = %+v", snaps[1])
	}
}

// The OnCollect concurrency contract: registration, scrapes, and metric
// writes from inside hooks may all race freely. Each hook runs
// serialized (never concurrently with itself or another hook), so the
// unsynchronized counter inside the hook closure must never trip the
// race detector, and a hook registered mid-scrape joins a later pass
// without corrupting the current one. Run with -race to enforce.
func TestOnCollectConcurrentWithScrapes(t *testing.T) {
	reg := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: register hooks continuously. Each hook keeps
	// unsynchronized local state, which the contract permits.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				passes := 0 // deliberately unsynchronized hook-local state
				g := reg.Gauge("collector_passes",
					L("owner", string(rune('a'+w))))
				reg.OnCollect(func() {
					passes++
					g.Set(float64(passes))
				})
				if i >= 16 {
					return
				}
			}
		}(w)
	}
	// Readers: scrape continuously while hooks are being registered.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if err := reg.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				_ = reg.Snapshot()
			}
		}()
	}
	wg.Wait()
	close(stop)

	// Every registered hook must have run on the final scrape exactly
	// once: the per-owner gauge equals that hook's pass count, and one
	// more scrape advances each by exactly one.
	before := collectGauges(reg, "collector_passes")
	after := collectGauges(reg, "collector_passes")
	if len(before) != len(after) || len(after) == 0 {
		t.Fatalf("gauge series changed across scrapes: %v vs %v", before, after)
	}
	for k, v := range after {
		if v <= before[k] {
			t.Fatalf("hook %s did not advance: before %v after %v", k, before[k], v)
		}
	}
}

// collectGauges scrapes reg and sums the named gauge per label set.
func collectGauges(reg *Registry, name string) map[string]float64 {
	out := make(map[string]float64)
	for _, s := range reg.Snapshot() {
		if s.Name != name {
			continue
		}
		key := ""
		for _, l := range s.Labels {
			key += l.Key + "=" + l.Value + ";"
		}
		out[key] += s.Value
	}
	return out
}
