package telemetry

import (
	"runtime"
	"strings"
	"testing"
)

// findSeries returns the first snapshot series with the given name.
func findSeries(snaps []SeriesSnapshot, name string) *SeriesSnapshot {
	for i := range snaps {
		if snaps[i].Name == name {
			return &snaps[i]
		}
	}
	return nil
}

func TestOnCollectRunsBeforeRead(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("refreshed")
	calls := 0
	reg.OnCollect(func() {
		calls++
		g.Set(float64(calls))
	})

	snaps := reg.Snapshot()
	if s := findSeries(snaps, "refreshed"); s == nil || s.Value != 1 {
		t.Fatalf("snapshot did not see collector value: %+v", s)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "refreshed 2") {
		t.Fatalf("WritePrometheus did not refresh collector:\n%s", b.String())
	}
	if calls != 2 {
		t.Fatalf("collector ran %d times, want 2", calls)
	}
}

func TestRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)

	// Force at least one GC cycle after registration so the pause
	// histogram has something to drain.
	runtime.GC()

	snaps := reg.Snapshot()
	if s := findSeries(snaps, "go_goroutines"); s == nil || s.Value < 1 {
		t.Fatalf("go_goroutines = %+v, want >= 1", s)
	}
	if s := findSeries(snaps, "go_heap_alloc_bytes"); s == nil || s.Value <= 0 {
		t.Fatalf("go_heap_alloc_bytes = %+v, want > 0", s)
	}
	if s := findSeries(snaps, "go_gc_pause_seconds"); s == nil {
		t.Fatal("go_gc_pause_seconds missing")
	} else if s.Histogram.Count < 1 {
		t.Fatalf("go_gc_pause_seconds count = %d, want >= 1", s.Histogram.Count)
	}
	bi := findSeries(snaps, "hotspot_build_info")
	if bi == nil || bi.Value != 1 {
		t.Fatalf("hotspot_build_info = %+v, want value 1", bi)
	}
	labels := map[string]string{}
	for _, l := range bi.Labels {
		labels[l.Key] = l.Value
	}
	if labels["go_version"] == "" || labels["revision"] == "" {
		t.Fatalf("hotspot_build_info labels incomplete: %v", bi.Labels)
	}
}

func TestRuntimeGCPausesCountedOnce(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)

	runtime.GC()
	first := findSeries(reg.Snapshot(), "go_gc_pause_seconds").Histogram.Count
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	numGC := ms.NumGC
	// Back-to-back scrapes: the count only grows if the runtime really
	// completed more cycles in between (background GC can do that).
	second := findSeries(reg.Snapshot(), "go_gc_pause_seconds").Histogram.Count
	runtime.ReadMemStats(&ms)
	if grew, cycles := second-first, int64(ms.NumGC-numGC); grew > cycles {
		t.Fatalf("pause count grew by %d with only %d GC cycles", grew, cycles)
	}
	runtime.GC()
	third := findSeries(reg.Snapshot(), "go_gc_pause_seconds").Histogram.Count
	if third < second+1 {
		t.Fatalf("one forced GC should add at least one pause: %d -> %d", second, third)
	}
}
