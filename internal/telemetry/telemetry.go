// Package telemetry provides dependency-free operational metrics for the
// hotspot-detection stack: atomic counters, gauges, and fixed-bucket
// latency histograms collected into a Registry that renders snapshots
// programmatically or in the Prometheus text exposition format.
//
// The paper's evaluation protocol treats ODST (overall detection
// simulation time) as a first-class metric next to accuracy and false
// alarms; this package is how the serving, scanning, simulation, and
// training layers report where that time goes. All metric types are safe
// for concurrent use and allocation-free on the hot path (a histogram
// observation is two atomic adds plus a branch-free bucket search).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram bucket upper bounds in
// seconds, matching the Prometheus client convention so dashboards
// transfer directly.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// atomicFloat is a float64 updated with compare-and-swap on its bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		if f.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value. The zero value is ready to
// use.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v; negative deltas are ignored to preserve monotonicity.
func (c *Counter) Add(v float64) {
	if v > 0 {
		c.v.Add(v)
	}
}

// AddDuration adds d expressed in seconds.
func (c *Counter) AddDuration(d time.Duration) { c.Add(d.Seconds()) }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets. Construct
// through Registry.Histogram; the zero value is not usable.
type Histogram struct {
	bounds []float64      // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicFloat
}

func newHistogram(buckets []float64) *Histogram {
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// HistogramSnapshot is a consistent-enough point-in-time view of a
// histogram (buckets are read individually; under concurrent writes the
// cumulative counts remain monotone).
type HistogramSnapshot struct {
	// UpperBounds are the bucket upper bounds; Counts[i] is the
	// cumulative count of observations <= UpperBounds[i]. The final
	// implicit +Inf bucket equals Count.
	UpperBounds []float64
	Counts      []int64
	Count       int64
	Sum         float64
}

// Snapshot captures cumulative bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		UpperBounds: append([]float64(nil), h.bounds...),
		Counts:      make([]int64, len(h.bounds)),
		Sum:         h.Sum(),
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if i < len(s.Counts) {
			s.Counts[i] = cum
		}
	}
	s.Count = cum
	return s
}

// Label is one name="value" dimension of a metric series.
type Label struct{ Key, Value string }

// L is shorthand for Label{k, v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// metricKind discriminates series for TYPE lines and rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered metric instance (name + label set).
type series struct {
	name   string
	labels []Label
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics. Metric constructors are get-or-create:
// requesting the same name and label set twice returns the same
// instance, so packages can re-derive handles instead of threading them.
// The zero value is not usable; use NewRegistry.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*series
	order []*series         // registration order for stable rendering
	help  map[string]string // metric name -> HELP text
	kinds map[string]metricKind

	collectMu sync.Mutex
	collect   []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byKey: make(map[string]*series),
		help:  make(map[string]string),
		kinds: make(map[string]metricKind),
	}
}

// SetHelp attaches a HELP line to every series of the named metric.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// OnCollect registers fn to run at the start of every Snapshot and
// WritePrometheus call, before the registry is read. Collectors refresh
// pull-style metrics (runtime stats, cache sizes) so scrapes always see
// current values without a background poller.
//
// Concurrency contract: OnCollect is safe to call concurrently with
// scrapes and with other OnCollect calls — registration and the
// collection pass serialize on one mutex, so a hook is never observed
// half-registered and never runs concurrently with itself or another
// hook (hooks may therefore keep unsynchronized local state, as the
// runtime collector does). A hook registered while a scrape is mid-pass
// joins the next pass, not the current one. Inside fn the registry's
// metric constructors and setters are allowed (they take the registry's
// data lock, which the collection pass does not hold), but Snapshot,
// WritePrometheus, and OnCollect itself would self-deadlock and must
// not be called.
func (r *Registry) OnCollect(fn func()) {
	r.collectMu.Lock()
	defer r.collectMu.Unlock()
	r.collect = append(r.collect, fn)
}

// runCollectors invokes the OnCollect hooks in registration order. It
// holds only collectMu, so hooks are free to touch metrics (which take
// mu); concurrent scrapes serialize their collection passes here.
func (r *Registry) runCollectors() {
	r.collectMu.Lock()
	defer r.collectMu.Unlock()
	for _, fn := range r.collect {
		fn()
	}
}

func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortLabels returns a sorted copy so label order never distinguishes
// series.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func (r *Registry) getOrCreate(name string, kind metricKind, labels []Label, make func() *series) *series {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, s.kind, kind))
		}
		return s
	}
	if k, ok := r.kinds[name]; ok && k != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, k, kind))
	}
	s := make()
	s.name = name
	s.labels = labels
	s.kind = kind
	r.byKey[key] = s
	r.kinds[name] = kind
	r.order = append(r.order, s)
	return s
}

// Counter returns the counter for name and labels, creating it if needed.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	s := r.getOrCreate(name, kindCounter, labels, func() *series {
		return &series{counter: &Counter{}}
	})
	return s.counter
}

// Gauge returns the gauge for name and labels, creating it if needed.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	s := r.getOrCreate(name, kindGauge, labels, func() *series {
		return &series{gauge: &Gauge{}}
	})
	return s.gauge
}

// Histogram returns the histogram for name and labels, creating it with
// the given bucket bounds if needed (nil buckets means DefBuckets).
// Bucket bounds are fixed by the first registration.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	s := r.getOrCreate(name, kindHistogram, labels, func() *series {
		return &series{hist: newHistogram(buckets)}
	})
	return s.hist
}

// SeriesSnapshot is one metric series in a registry snapshot.
type SeriesSnapshot struct {
	Name   string
	Labels []Label
	Kind   string // "counter", "gauge", or "histogram"

	// Value holds counter/gauge values; for histograms see Histogram.
	Value     float64
	Histogram *HistogramSnapshot
}

// Snapshot returns every registered series in registration order,
// after refreshing any OnCollect collectors.
func (r *Registry) Snapshot() []SeriesSnapshot {
	r.runCollectors()
	r.mu.Lock()
	order := append([]*series(nil), r.order...)
	r.mu.Unlock()

	out := make([]SeriesSnapshot, 0, len(order))
	for _, s := range order {
		snap := SeriesSnapshot{
			Name:   s.name,
			Labels: append([]Label(nil), s.labels...),
			Kind:   s.kind.String(),
		}
		switch s.kind {
		case kindCounter:
			snap.Value = s.counter.Value()
		case kindGauge:
			snap.Value = s.gauge.Value()
		case kindHistogram:
			h := s.hist.Snapshot()
			snap.Histogram = &h
		}
		out = append(out, snap)
	}
	return out
}

// formatValue renders floats the way Prometheus clients do: integers
// without a decimal point, +Inf for infinity.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4). Series of the same metric name are grouped
// under one TYPE/HELP header; output is deterministic given a quiescent
// registry: metrics appear in first-registration order, series sorted by
// label string within a metric.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runCollectors()
	r.mu.Lock()
	order := append([]*series(nil), r.order...)
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	// Group series by metric name, keeping first-registration order of
	// names.
	var names []string
	byName := make(map[string][]*series)
	for _, s := range order {
		if _, ok := byName[s.name]; !ok {
			names = append(names, s.name)
		}
		byName[s.name] = append(byName[s.name], s)
	}

	var b strings.Builder
	for _, name := range names {
		group := byName[name]
		sort.Slice(group, func(i, j int) bool {
			return labelString(group[i].labels) < labelString(group[j].labels)
		})
		if h := help[name]; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, group[0].kind)
		for _, s := range group {
			switch s.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %s\n", name, labelString(s.labels), formatValue(s.counter.Value()))
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", name, labelString(s.labels), formatValue(s.gauge.Value()))
			case kindHistogram:
				snap := s.hist.Snapshot()
				for i, ub := range snap.UpperBounds {
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						name, labelString(s.labels, L("le", formatValue(ub))), snap.Counts[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n",
					name, labelString(s.labels, L("le", "+Inf")), snap.Count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", name, labelString(s.labels), formatValue(snap.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", name, labelString(s.labels), snap.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
