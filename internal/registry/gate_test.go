// Tests for the exported standalone Gate — the same verdict logic the
// reload path uses, callable directly as the reduced-precision admission
// check (hsdserve gates a compressed model against its float64 baseline
// before serving).

package registry

import (
	"strings"
	"testing"
)

func TestGateAdmitsSmallPrecisionDrift(t *testing.T) {
	g := golden(4, 2)
	// Baseline: perfect separation at thr 0.5. Candidate: the same model
	// after quantization — every score nudged by a few hundredths, no
	// decision flips.
	base := det("f64", 0.5, 0.9, 0.8, 0.1, 0.2)
	quant := det("int8", 0.5, 0.87, 0.83, 0.12, 0.17)
	v := Gate(base, quant, g, 0.05, 0.05, t.Logf)
	if !v.OK {
		t.Fatalf("drift-free candidate rejected: %s", v.Reason)
	}
}

func TestGateLogsBaselineFailure(t *testing.T) {
	g := golden(4, 2)
	// A live baseline that cannot score the golden set downgrades the
	// gate to sanity-only — and must say so.
	broken := &fakeDet{name: "f64", thr: 0.5, panics: true}
	cand := det("int8", 0.5, 0.9, 0.8, 0.1, 0.2)
	var logs []string
	v := Gate(broken, cand, g, 0, 0, func(format string, args ...any) {
		logs = append(logs, format)
	})
	if !v.OK {
		t.Fatalf("finite candidate rejected under sanity-only gate: %s", v.Reason)
	}
	if len(logs) == 0 {
		t.Fatal("baseline failure was not logged")
	}
}

func TestGateRejectsRecallDrop(t *testing.T) {
	g := golden(4, 2)
	base := det("f64", 0.5, 0.9, 0.8, 0.1, 0.2)
	// Quantization pushed one of two hotspots under threshold: recall
	// 1.0 -> 0.5, far beyond the 5% allowance.
	quant := det("int8", 0.5, 0.9, 0.4, 0.1, 0.2)
	v := Gate(base, quant, g, 0.05, 0.05, nil)
	if v.OK {
		t.Fatal("candidate with halved recall admitted")
	}
	if !strings.Contains(v.Reason, "recall") {
		t.Fatalf("reason %q does not mention recall", v.Reason)
	}
}

func TestGateRejectsFalseAlarmRise(t *testing.T) {
	g := golden(4, 2)
	base := det("f64", 0.5, 0.9, 0.8, 0.1, 0.2)
	// A coldspot crossed the threshold: false-alarm rate 0 -> 0.5.
	quant := det("int8", 0.5, 0.9, 0.8, 0.6, 0.2)
	v := Gate(base, quant, g, 0.05, 0.05, nil)
	if v.OK {
		t.Fatal("candidate with new false alarms admitted")
	}
	if !strings.Contains(v.Reason, "false-alarm") {
		t.Fatalf("reason %q does not mention false-alarm rate", v.Reason)
	}
}

func TestGateRejectsNonFiniteCandidate(t *testing.T) {
	g := golden(4, 2)
	base := det("f64", 0.5, 0.9, 0.8, 0.1, 0.2)
	bad := det("int8", 0.5, 0.9, nan(), 0.1, 0.2)
	if v := Gate(base, bad, g, 1, 1, nil); v.OK {
		t.Fatal("NaN-scoring candidate admitted even with slack bounds")
	}
}

func TestGateNilLogf(t *testing.T) {
	// nil logf must not panic anywhere in the verdict path.
	g := golden(2, 1)
	base := det("f64", 0.5, 0.9, 0.1)
	if v := Gate(base, base, g, 0, 0, nil); !v.OK {
		t.Fatalf("self-comparison rejected: %s", v.Reason)
	}
}

func TestGateEmptyGoldenSanityOnly(t *testing.T) {
	base := det("f64", 0.5)
	cand := det("int8", 0.5)
	if v := Gate(base, cand, nil, 0, 0, nil); !v.OK {
		t.Fatalf("empty golden set rejected finite candidate: %s", v.Reason)
	}
}

func nan() float64 {
	var z float64
	return z / z
}
