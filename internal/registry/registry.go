// Package registry manages versioned model generations for hot reload.
//
// A Registry holds the live detector generation behind an atomic
// pointer (lock-free reads on the serving hot path) and serializes
// reloads: a candidate model is loaded in the background, scored
// against a golden validation set, and compared with the live model —
// hotspot recall must not drop and the false-alarm rate must not rise
// beyond configured bounds, all candidate scores must be finite, and a
// panicking candidate (wrong tensor shape) is caught and rejected. Only
// a candidate that passes the gate is swapped in. After a swap the
// registry watches a probation window of serving outcomes; if errors
// spike, it automatically rolls back to the previous generation.
//
// Every decision is observable: hotspot_model_generation (gauge),
// hotspot_reloads_total{outcome} with outcomes swapped / load_failed /
// rejected / rolled_back, and a model.reload span carrying the gate
// verdict.
package registry

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/telemetry"
	"github.com/golitho/hsd/internal/trace"
)

// Generation is one immutable model version.
type Generation struct {
	// ID increases with every accepted swap. A rollback restores the
	// previous generation object, so the gauge visibly drops back.
	ID int64
	// Source records where the model came from ("boot" or a file path).
	Source string
	// Detector serves this generation's model.
	Detector core.Detector
	// LoadedAt is when the generation went live.
	LoadedAt time.Time
}

// Verdict is the validation gate's decision on a candidate model.
type Verdict struct {
	OK     bool
	Reason string
	// Recall and false-alarm rate of live and candidate on the golden
	// set (NaN when the gate had no golden samples of that class).
	LiveRecall, CandRecall float64
	LiveFAR, CandFAR       float64
}

func (v Verdict) String() string {
	if v.OK {
		return fmt.Sprintf("pass (recall %.3f->%.3f, far %.3f->%.3f)",
			v.LiveRecall, v.CandRecall, v.LiveFAR, v.CandFAR)
	}
	return "reject: " + v.Reason
}

// Config parameterizes a Registry.
type Config struct {
	// Loader builds a candidate detector from a model path.
	Loader func(path string) (core.Detector, error)
	// Golden is the validation set the gate scores both models on. An
	// empty set reduces the gate to finiteness/panic sanity checks.
	Golden []core.LabeledClip
	// MaxRecallDrop is how much hotspot recall the candidate may lose
	// vs. the live model (default 0: no regression allowed).
	MaxRecallDrop float64
	// MaxFalseAlarmRise is how much the false-alarm rate may rise
	// (default 0).
	MaxFalseAlarmRise float64
	// ProbationRequests is how many post-swap serving outcomes are
	// watched (0 disables probation).
	ProbationRequests int
	// ProbationMaxFailures is how many failures within the window are
	// tolerated before automatic rollback.
	ProbationMaxFailures int
	// OnSwap is called with the new live generation after every swap
	// and rollback; servers use it to repoint their serving path.
	OnSwap func(gen *Generation)
	// Quality, when set, is notified on every generation change: live
	// quality windows are reset (the old model's traffic must not count
	// against the new one) and the incoming generation's baseline
	// sidecar is installed as the new drift reference.
	Quality QualityMonitor
	// Logf receives watcher and rollback notices (default: discard).
	Logf func(format string, args ...any)
}

// QualityMonitor is the registry's view of the model-quality monitor
// (internal/qualitymon.Monitor satisfies it). Reset clears live drift /
// confusion / SLO windows; InstallBaselineSidecar loads the quality
// baseline persisted next to a model file (a missing sidecar is not an
// error — the monitor keeps the previous reference).
type QualityMonitor interface {
	Reset()
	InstallBaselineSidecar(modelPath string)
}

// Registry is the versioned model store. Safe for concurrent use.
type Registry struct {
	cfg Config

	live atomic.Pointer[Generation]

	mu     sync.Mutex // serializes reload / rollback / probation counts
	prev   *Generation
	nextID int64

	probActive   atomic.Bool
	probLeft     int
	probFailures int

	metrics *telemetry.Registry
}

// New builds a registry serving initial as generation 1.
func New(initial core.Detector, cfg Config) *Registry {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	r := &Registry{cfg: cfg, nextID: 1}
	gen := &Generation{ID: 1, Source: "boot", Detector: initial, LoadedAt: time.Now()}
	r.live.Store(gen)
	return r
}

// BindMetrics registers the registry's gauges and counters. Call before
// serving; reloads before binding are simply not counted.
func (r *Registry) BindMetrics(m *telemetry.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = m
	m.SetHelp("hotspot_model_generation", "Generation number of the live model (drops back on rollback).")
	m.SetHelp("hotspot_reloads_total", "Model reload attempts by outcome (swapped, load_failed, rejected, rolled_back).")
	m.Gauge("hotspot_model_generation").Set(float64(r.live.Load().ID))
}

func (r *Registry) countReload(outcome string) {
	if r.metrics != nil {
		r.metrics.Counter("hotspot_reloads_total", telemetry.L("outcome", outcome)).Inc()
	}
}

func (r *Registry) setGenerationGauge(id int64) {
	if r.metrics != nil {
		r.metrics.Gauge("hotspot_model_generation").Set(float64(id))
	}
}

// Live returns the serving generation. Lock-free; call per request.
func (r *Registry) Live() *Generation { return r.live.Load() }

// gateScores scores the golden clips with panic containment: a
// candidate trained for a different tensor shape panics inside the
// forward pass, and that must read as a gate rejection, not a crash.
func gateScores(det core.Detector, clips []core.LabeledClip) (scores []float64, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			scores, err = nil, fmt.Errorf("scoring panicked: %v", rec)
		}
	}()
	if c, ok := det.(core.Cloner); ok {
		det = c.CloneDetector()
	}
	raw := make([]float64, len(clips))
	for i, s := range clips {
		v, serr := det.Score(s.Clip)
		if serr != nil {
			return nil, fmt.Errorf("golden clip %d: %w", i, serr)
		}
		raw[i] = v
	}
	return raw, nil
}

// goldenStats folds scores into (recall, false-alarm rate) under the
// detector's threshold.
func goldenStats(det core.Detector, clips []core.LabeledClip, scores []float64) (recall, far float64) {
	thr := det.Threshold()
	var hot, hotHit, cold, coldHit int
	for i, s := range clips {
		flagged := scores[i] >= thr
		if s.Hotspot {
			hot++
			if flagged {
				hotHit++
			}
		} else {
			cold++
			if flagged {
				coldHit++
			}
		}
	}
	recall, far = math.NaN(), math.NaN()
	if hot > 0 {
		recall = float64(hotHit) / float64(hot)
	}
	if cold > 0 {
		far = float64(coldHit) / float64(cold)
	}
	return recall, far
}

// Gate validates a candidate detector against a live baseline on a
// golden set: every candidate score must be finite, hotspot recall must
// not drop more than maxRecallDrop below the live model's, and the
// false-alarm rate must not rise more than maxFalseAlarmRise above it.
// Scoring panics read as rejections. An empty golden set reduces the
// gate to the sanity checks. logf (optional) receives gate notices.
//
// Besides hot reloads, this is the admission check for reduced-precision
// serving: a float32/int8-compressed model is gated against its own
// float64 original before the server will serve it.
func Gate(live, cand core.Detector, golden []core.LabeledClip,
	maxRecallDrop, maxFalseAlarmRise float64, logf func(format string, args ...any)) Verdict {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	v := Verdict{LiveRecall: math.NaN(), CandRecall: math.NaN(), LiveFAR: math.NaN(), CandFAR: math.NaN()}
	candScores, err := gateScores(cand, golden)
	if err != nil {
		v.Reason = "candidate: " + err.Error()
		return v
	}
	for i, s := range candScores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			v.Reason = fmt.Sprintf("candidate produced non-finite score %v on golden clip %d", s, i)
			return v
		}
	}
	if len(golden) == 0 {
		v.OK = true
		return v
	}
	liveScores, err := gateScores(live, golden)
	if err != nil {
		// A live model that cannot score the goldens gives the gate no
		// baseline; accept on candidate sanity alone rather than wedge
		// reloads forever.
		logf("registry: live model failed golden scoring (%v); gating on sanity only", err)
		v.OK = true
		v.Reason = "no live baseline"
		return v
	}
	v.LiveRecall, v.LiveFAR = goldenStats(live, golden, liveScores)
	v.CandRecall, v.CandFAR = goldenStats(cand, golden, candScores)
	if !math.IsNaN(v.LiveRecall) && !math.IsNaN(v.CandRecall) &&
		v.CandRecall < v.LiveRecall-maxRecallDrop {
		v.Reason = fmt.Sprintf("recall regression: %.3f -> %.3f (max drop %.3f)",
			v.LiveRecall, v.CandRecall, maxRecallDrop)
		return v
	}
	if !math.IsNaN(v.LiveFAR) && !math.IsNaN(v.CandFAR) &&
		v.CandFAR > v.LiveFAR+maxFalseAlarmRise {
		v.Reason = fmt.Sprintf("false-alarm regression: %.3f -> %.3f (max rise %.3f)",
			v.LiveFAR, v.CandFAR, maxFalseAlarmRise)
		return v
	}
	v.OK = true
	return v
}

// gate validates a candidate against the live model with the registry's
// configured golden set and drift bounds.
func (r *Registry) gate(live, cand core.Detector) Verdict {
	return Gate(live, cand, r.cfg.Golden, r.cfg.MaxRecallDrop, r.cfg.MaxFalseAlarmRise, r.cfg.Logf)
}

// ErrRejected wraps gate rejections so callers can map them to a
// distinct response (422 vs 500).
var ErrRejected = errors.New("registry: candidate rejected by validation gate")

// Reload loads the model at path, runs the validation gate against the
// live generation, and swaps the candidate in when it passes. The
// returned Verdict carries the gate numbers either way. On success the
// previous generation is retained for rollback and the probation window
// (when configured) is armed.
func (r *Registry) Reload(ctx context.Context, path string) (*Generation, Verdict, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	_, sp := trace.Start(ctx, "model.reload", trace.A("path", path))
	defer sp.End()

	cand, err := r.cfg.Loader(path)
	if err != nil {
		r.countReload("load_failed")
		err = fmt.Errorf("registry: load %s: %w", path, err)
		sp.SetError(err)
		return nil, Verdict{Reason: err.Error()}, err
	}
	live := r.live.Load()
	verdict := r.gate(live.Detector, cand)
	sp.SetAttr("gate", verdict.String())
	if !verdict.OK {
		r.countReload("rejected")
		err := fmt.Errorf("%w: %s", ErrRejected, verdict.Reason)
		sp.SetError(err)
		return nil, verdict, err
	}

	r.nextID++
	gen := &Generation{ID: r.nextID, Source: path, Detector: cand, LoadedAt: time.Now()}
	r.prev = live
	r.live.Store(gen)
	if r.cfg.ProbationRequests > 0 {
		r.probLeft = r.cfg.ProbationRequests
		r.probFailures = 0
		r.probActive.Store(true)
	}
	r.countReload("swapped")
	r.setGenerationGauge(gen.ID)
	sp.SetAttrInt("generation", int(gen.ID))
	if r.cfg.OnSwap != nil {
		r.cfg.OnSwap(gen)
	}
	if r.cfg.Quality != nil {
		r.cfg.Quality.Reset()
		r.cfg.Quality.InstallBaselineSidecar(path)
	}
	r.cfg.Logf("registry: swapped in generation %d from %s (%s)", gen.ID, path, verdict)
	return gen, verdict, nil
}

// ReportOutcome feeds one serving outcome (ok=false for a primary
// error) into the probation window. Outside probation it is one atomic
// load. Exceeding the failure budget rolls back to the previous
// generation.
func (r *Registry) ReportOutcome(ok bool) {
	if !r.probActive.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.probActive.Load() { // re-check: a racing rollback disarmed it
		return
	}
	if !ok {
		r.probFailures++
	}
	r.probLeft--
	if r.probFailures > r.cfg.ProbationMaxFailures {
		r.rollbackLocked(fmt.Sprintf("%d failures in probation window", r.probFailures))
		return
	}
	if r.probLeft <= 0 {
		// Survived probation: the previous generation is no longer
		// needed as a rollback target.
		r.probActive.Store(false)
		r.prev = nil
	}
}

// rollbackLocked restores the previous generation. Caller holds r.mu.
func (r *Registry) rollbackLocked(reason string) {
	r.probActive.Store(false)
	if r.prev == nil {
		r.cfg.Logf("registry: rollback wanted (%s) but no previous generation", reason)
		return
	}
	bad := r.live.Load()
	restored := r.prev
	r.prev = nil
	r.live.Store(restored)
	r.countReload("rolled_back")
	r.setGenerationGauge(restored.ID)
	if r.cfg.OnSwap != nil {
		r.cfg.OnSwap(restored)
	}
	if r.cfg.Quality != nil {
		r.cfg.Quality.Reset()
		// The boot generation has no model file to find a sidecar next
		// to; its baseline (installed at startup) is still in place.
		if restored.Source != "boot" {
			r.cfg.Quality.InstallBaselineSidecar(restored.Source)
		}
	}
	r.cfg.Logf("registry: rolled back generation %d -> %d: %s", bad.ID, restored.ID, reason)
}

// Rollback manually restores the previous generation (admin use).
func (r *Registry) Rollback(reason string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	had := r.prev != nil
	r.rollbackLocked(reason)
	return had
}

// Watch polls path until ctx is done, reloading whenever the file's
// modification time or size changes. The first observation establishes
// the baseline (no reload for the boot model). Reload failures are
// logged and do not stop the watch.
func (r *Registry) Watch(ctx context.Context, path string, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	var lastMod time.Time
	var lastSize int64
	seeded := false
	if st, err := os.Stat(path); err == nil {
		lastMod, lastSize, seeded = st.ModTime(), st.Size(), true
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		st, err := os.Stat(path)
		if err != nil {
			continue // absent or unreadable: keep serving, keep watching
		}
		if seeded && st.ModTime().Equal(lastMod) && st.Size() == lastSize {
			continue
		}
		lastMod, lastSize, seeded = st.ModTime(), st.Size(), true
		if _, _, err := r.Reload(ctx, path); err != nil {
			r.cfg.Logf("registry: watch reload of %s failed: %v", path, err)
		}
	}
}
