package registry

import (
	"strings"
	"testing"

	"github.com/golitho/hsd/internal/router"
)

// routerCandidate builds a fitted two-stage router over fakeDets with
// the given non-final band: stage 0 scores per stage0, the final stage
// per stage1 — the same index-encoded golden clips the other gate tests
// use.
func routerCandidate(t *testing.T, band router.Band, stage0, stage1 []float64) *router.Router {
	t.Helper()
	r := router.New("router-cand", []router.Stage{
		{Name: "cheap", Detector: &fakeDet{name: "cheap", thr: 0.5, scores: stage0}},
		{Name: "deep", Detector: &fakeDet{name: "deep", thr: 0.5, scores: stage1}},
	}, router.Config{})
	id := router.Calibration{
		Weights: []float64{4}, Mean: []float64{0.5}, InvStd: []float64{1}, Band: band,
	}
	id2 := router.Calibration{
		Weights: []float64{2, 2}, Mean: []float64{0.5, 0.5}, InvStd: []float64{1, 1},
		Band: router.AlwaysEscalate,
	}
	if err := r.SetCalibrations([]router.Calibration{id, id2}); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestGateAdmitsEquivalentRouter: a router whose routed verdicts match
// the live single detector passes the hot-reload gate — the gate works
// on the router exactly as on any detector.
func TestGateAdmitsEquivalentRouter(t *testing.T) {
	g := golden(4, 2)
	live := det("live", 0.5, 0.9, 0.8, 0.1, 0.2)
	// Cheap stage is confident and correct on every clip; the band lets
	// it answer everything.
	cand := routerCandidate(t, router.Band{Lo: 0.45, Hi: 0.55},
		[]float64{0.9, 0.8, 0.1, 0.2},
		[]float64{0.9, 0.8, 0.1, 0.2})
	v := Gate(live, cand, g, 0.05, 0.05, t.Logf)
	if !v.OK {
		t.Fatalf("equivalent router rejected: %s", v.Reason)
	}
}

// TestGateRejectsRouterRecallDrop: a router whose cheap stage
// confidently answers "non-hotspot" on a true hotspot loses recall and
// must be rejected like any regressing candidate.
func TestGateRejectsRouterRecallDrop(t *testing.T) {
	g := golden(4, 2)
	live := det("live", 0.5, 0.9, 0.8, 0.1, 0.2)
	// Stage 0 is confidently wrong on hotspot 1 (score 0.1 → answers
	// cold); the deep stage never sees it.
	cand := routerCandidate(t, router.Band{Lo: 0.45, Hi: 0.55},
		[]float64{0.9, 0.1, 0.1, 0.2},
		[]float64{0.9, 0.8, 0.1, 0.2})
	v := Gate(live, cand, g, 0.05, 0.05, nil)
	if v.OK {
		t.Fatal("router with lost recall admitted")
	}
	if !strings.Contains(v.Reason, "recall") {
		t.Fatalf("reason %q does not mention recall", v.Reason)
	}
}

// TestGateRouterEscalationNeutral: with an always-escalate band the
// router is gate-equivalent to its final detector — same verdict from
// the gate for both.
func TestGateRouterEscalationNeutral(t *testing.T) {
	g := golden(4, 2)
	live := det("live", 0.5, 0.9, 0.8, 0.1, 0.2)
	final := []float64{0.9, 0.4, 0.1, 0.2} // drops hotspot 1
	cand := routerCandidate(t, router.AlwaysEscalate,
		[]float64{0.9, 0.9, 0.9, 0.9}, final)
	direct := det("deep", 0.5, final...)
	vRouter := Gate(live, cand, g, 0.05, 0.05, nil)
	vDirect := Gate(live, direct, g, 0.05, 0.05, nil)
	if vRouter.OK != vDirect.OK {
		t.Fatalf("gate disagrees: router %v (%s), direct %v (%s)",
			vRouter.OK, vRouter.Reason, vDirect.OK, vDirect.Reason)
	}
	if vRouter.OK {
		t.Fatal("regressing final stage admitted through the router")
	}
}
