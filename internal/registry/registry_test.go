package registry

import (
	"context"
	"errors"
	"math"
	"os"
	"testing"
	"time"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/qualitymon"
	"github.com/golitho/hsd/internal/telemetry"
)

// fakeDet scores clips by looking up the index encoded in the clip
// window's X origin, so tests control every golden score exactly.
type fakeDet struct {
	name   string
	scores []float64
	thr    float64
	panics bool
}

func (d *fakeDet) Name() string                 { return d.name }
func (d *fakeDet) Fit([]core.LabeledClip) error { return nil }
func (d *fakeDet) Threshold() float64           { return d.thr }
func (d *fakeDet) Score(c layout.Clip) (float64, error) {
	if d.panics {
		panic("shape mismatch")
	}
	i := c.Window.Min.X
	if i < 0 || i >= len(d.scores) {
		return 0, nil
	}
	return d.scores[i], nil
}

// golden builds a labelled set: the first nHot clips are hotspots.
func golden(n, nHot int) []core.LabeledClip {
	out := make([]core.LabeledClip, n)
	for i := range out {
		out[i] = core.LabeledClip{
			Clip:    layout.Clip{Window: geom.R(i, 0, i+1, 1)},
			Hotspot: i < nHot,
		}
	}
	return out
}

// scores maps (hotspot scores..., coldspot scores...) onto the golden
// index space.
func det(name string, thr float64, scores ...float64) *fakeDet {
	return &fakeDet{name: name, thr: thr, scores: scores}
}

func counter(m *telemetry.Registry, outcome string) float64 {
	return m.Counter("hotspot_reloads_total", telemetry.L("outcome", outcome)).Value()
}

func newTestRegistry(t *testing.T, cand core.Detector, cfg Config) (*Registry, *telemetry.Registry, *int) {
	t.Helper()
	swaps := 0
	inner := cfg.OnSwap
	cfg.OnSwap = func(g *Generation) {
		swaps++
		if inner != nil {
			inner(g)
		}
	}
	if cfg.Loader == nil {
		cfg.Loader = func(path string) (core.Detector, error) { return cand, nil }
	}
	// Live model: perfect on the 4-clip golden set (2 hot, 2 cold).
	r := New(det("live", 0.5, 0.9, 0.9, 0.1, 0.1), cfg)
	m := telemetry.NewRegistry()
	r.BindMetrics(m)
	return r, m, &swaps
}

func TestReloadSwapsGoodCandidate(t *testing.T) {
	cand := det("cand", 0.5, 0.8, 0.8, 0.2, 0.2) // same recall/FAR
	r, m, swaps := newTestRegistry(t, cand, Config{Golden: golden(4, 2)})

	gen, v, err := r.Reload(context.Background(), "model-v2")
	if err != nil {
		t.Fatalf("Reload: %v (verdict %s)", err, v)
	}
	if gen.ID != 2 || r.Live().ID != 2 || r.Live().Detector != core.Detector(cand) {
		t.Fatalf("live generation = %+v, want ID 2 serving candidate", r.Live())
	}
	if *swaps != 1 {
		t.Fatalf("OnSwap fired %d times, want 1", *swaps)
	}
	if got := counter(m, "swapped"); got != 1 {
		t.Fatalf("swapped counter = %v, want 1", got)
	}
	if got := m.Gauge("hotspot_model_generation").Value(); got != 2 {
		t.Fatalf("generation gauge = %v, want 2", got)
	}
	if !v.OK || v.CandRecall != 1 || v.CandFAR != 0 {
		t.Fatalf("verdict = %+v, want clean pass", v)
	}
}

func TestGateRejectsNaNModel(t *testing.T) {
	cand := det("nan", 0.5, math.NaN(), 0.9, 0.1, 0.1)
	r, m, swaps := newTestRegistry(t, cand, Config{Golden: golden(4, 2)})

	_, v, err := r.Reload(context.Background(), "model-nan")
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if v.OK {
		t.Fatal("verdict passed a NaN candidate")
	}
	if r.Live().ID != 1 {
		t.Fatalf("live generation = %d, want 1 (unchanged)", r.Live().ID)
	}
	if *swaps != 0 {
		t.Fatal("OnSwap fired for a rejected candidate")
	}
	if got := counter(m, "rejected"); got != 1 {
		t.Fatalf("rejected counter = %v, want 1", got)
	}
}

func TestGateRejectsRecallRegression(t *testing.T) {
	// Candidate misses both hotspots: recall 1.0 -> 0.0.
	cand := det("worse", 0.5, 0.1, 0.1, 0.1, 0.1)
	r, _, _ := newTestRegistry(t, cand, Config{Golden: golden(4, 2), MaxRecallDrop: 0.25})
	if _, v, err := r.Reload(context.Background(), "m"); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v (verdict %s), want ErrRejected", err, v)
	}
}

func TestGateRejectsFalseAlarmRegression(t *testing.T) {
	// Candidate flags both coldspots: FAR 0.0 -> 1.0.
	cand := det("noisy", 0.5, 0.9, 0.9, 0.9, 0.9)
	r, _, _ := newTestRegistry(t, cand, Config{Golden: golden(4, 2), MaxFalseAlarmRise: 0.25})
	if _, _, err := r.Reload(context.Background(), "m"); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestGateRejectsPanickingCandidate(t *testing.T) {
	cand := &fakeDet{name: "boom", panics: true}
	r, m, _ := newTestRegistry(t, cand, Config{Golden: golden(4, 2)})
	if _, _, err := r.Reload(context.Background(), "m"); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if got := counter(m, "rejected"); got != 1 {
		t.Fatalf("rejected counter = %v, want 1", got)
	}
}

func TestReloadCountsLoadFailure(t *testing.T) {
	r, m, _ := newTestRegistry(t, nil, Config{
		Golden: golden(4, 2),
		Loader: func(string) (core.Detector, error) { return nil, errors.New("no such file") },
	})
	if _, _, err := r.Reload(context.Background(), "missing"); err == nil {
		t.Fatal("Reload of failing loader succeeded")
	}
	if got := counter(m, "load_failed"); got != 1 {
		t.Fatalf("load_failed counter = %v, want 1", got)
	}
}

func TestProbationRollsBack(t *testing.T) {
	cand := det("cand", 0.5, 0.8, 0.8, 0.2, 0.2)
	r, m, swaps := newTestRegistry(t, cand, Config{
		Golden:               golden(4, 2),
		ProbationRequests:    10,
		ProbationMaxFailures: 2,
	})
	if _, _, err := r.Reload(context.Background(), "m"); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	r.ReportOutcome(true)
	r.ReportOutcome(false)
	r.ReportOutcome(false)
	if r.Live().ID != 2 {
		t.Fatal("rolled back before exceeding the failure budget")
	}
	r.ReportOutcome(false) // third failure > budget of 2
	if r.Live().ID != 1 {
		t.Fatalf("live generation = %d, want 1 after rollback", r.Live().ID)
	}
	if got := counter(m, "rolled_back"); got != 1 {
		t.Fatalf("rolled_back counter = %v, want 1", got)
	}
	if got := m.Gauge("hotspot_model_generation").Value(); got != 1 {
		t.Fatalf("generation gauge = %v, want 1 after rollback", got)
	}
	if *swaps != 2 { // swap in + rollback
		t.Fatalf("OnSwap fired %d times, want 2", *swaps)
	}
	// Window is disarmed: further failures cannot double-rollback.
	r.ReportOutcome(false)
	if got := counter(m, "rolled_back"); got != 1 {
		t.Fatalf("rolled_back counter moved after disarm: %v", got)
	}
}

func TestProbationSurvival(t *testing.T) {
	cand := det("cand", 0.5, 0.8, 0.8, 0.2, 0.2)
	r, m, _ := newTestRegistry(t, cand, Config{
		Golden:               golden(4, 2),
		ProbationRequests:    3,
		ProbationMaxFailures: 1,
	})
	if _, _, err := r.Reload(context.Background(), "m"); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	r.ReportOutcome(true)
	r.ReportOutcome(false) // within budget
	r.ReportOutcome(true)  // window closes
	if r.Live().ID != 2 {
		t.Fatalf("live generation = %d, want 2 (survived probation)", r.Live().ID)
	}
	if got := counter(m, "rolled_back"); got != 0 {
		t.Fatalf("rolled_back counter = %v, want 0", got)
	}
	// After surviving, the rollback target is gone.
	if r.Rollback("manual") {
		t.Fatal("Rollback found a previous generation after probation closed")
	}
}

func TestManualRollback(t *testing.T) {
	cand := det("cand", 0.5, 0.8, 0.8, 0.2, 0.2)
	r, _, _ := newTestRegistry(t, cand, Config{Golden: golden(4, 2)})
	if _, _, err := r.Reload(context.Background(), "m"); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if !r.Rollback("operator request") {
		t.Fatal("manual rollback found nothing to restore")
	}
	if r.Live().ID != 1 {
		t.Fatalf("live generation = %d, want 1", r.Live().ID)
	}
}

func TestEmptyGoldenGatesOnSanityOnly(t *testing.T) {
	bad := det("nan", 0.5, math.NaN())
	r, _, _ := newTestRegistry(t, bad, Config{})
	// No goldens: nothing scored, so even a would-be-NaN model passes —
	// the gate degrades to sanity checks over an empty set.
	if _, _, err := r.Reload(context.Background(), "m"); err != nil {
		t.Fatalf("Reload with empty golden set: %v", err)
	}
}

func TestWatchReloadsOnChange(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/model.hsdnn"
	cand := det("cand", 0.5, 0.8, 0.8, 0.2, 0.2)
	loads := make(chan string, 4)
	r, _, _ := newTestRegistry(t, nil, Config{
		Golden: golden(4, 2),
		Loader: func(p string) (core.Detector, error) {
			select {
			case loads <- p:
			default:
			}
			return cand, nil
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Watch(ctx, path, 5*time.Millisecond)
	}()

	// The watcher's baseline stat races with this goroutine, so a single
	// write could be absorbed as the baseline. Keep growing the file —
	// every write changes its size — until a reload lands.
	writeUntilGeneration := func(want int64) {
		t.Helper()
		content := "model"
		deadline := time.Now().Add(10 * time.Second)
		for r.Live().ID < want {
			if time.Now().After(deadline) {
				t.Fatalf("generation = %d, want %d", r.Live().ID, want)
			}
			content += "+"
			if err := writeFile(path, content); err != nil {
				t.Fatal(err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	writeUntilGeneration(2)
	writeUntilGeneration(3)
	select {
	case p := <-loads:
		if p != path {
			t.Fatalf("loaded %s, want %s", p, path)
		}
	default:
		t.Fatal("no load recorded despite generation bumps")
	}
	cancel()
	<-done
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func waitGeneration(t *testing.T, r *Registry, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.Live().ID == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("generation = %d, want %d", r.Live().ID, want)
}

// TestRollbackWithBadSidecar: probation rollback restores the previous
// generation cleanly even when that generation's quality sidecar is
// missing or corrupt — the monitor keeps its prior baseline (logged,
// not fatal) and the model swap still lands. A real qualitymon.Monitor
// sits behind Config.Quality so the sidecar load path actually runs.
func TestRollbackWithBadSidecar(t *testing.T) {
	for _, tc := range []struct {
		name    string
		sidecar []byte // nil: no sidecar file at all
	}{
		{"missing-sidecar", nil},
		{"corrupt-sidecar", []byte("not a baseline\x00\xff\x01garbage")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			goodPath := dir + "/good.gob"
			if err := os.WriteFile(goodPath, []byte("model bytes"), 0o644); err != nil {
				t.Fatal(err)
			}
			if tc.sidecar != nil {
				if err := os.WriteFile(qualitymon.SidecarPath(goodPath), tc.sidecar, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			qm := qualitymon.New(qualitymon.Options{Logf: t.Logf})
			defer qm.Close()

			cand := det("cand", 0.5, 0.8, 0.8, 0.2, 0.2)
			r, m, _ := newTestRegistry(t, cand, Config{
				Golden:               golden(4, 2),
				ProbationRequests:    2,
				ProbationMaxFailures: 0,
				Quality:              qm,
			})
			// Generation 2: the future rollback target, sitting next to the
			// bad sidecar. Survive its probation so it becomes the floor.
			if _, _, err := r.Reload(context.Background(), goodPath); err != nil {
				t.Fatalf("Reload rollback target: %v", err)
			}
			r.ReportOutcome(true)
			r.ReportOutcome(true)
			// Generation 3 fails probation: rollback must reinstall
			// generation 2 — and with it the missing/corrupt sidecar.
			if _, _, err := r.Reload(context.Background(), dir+"/bad.gob"); err != nil {
				t.Fatalf("Reload failing candidate: %v", err)
			}
			r.ReportOutcome(false)
			if live := r.Live(); live.ID != 2 || live.Source != goodPath {
				t.Fatalf("live = ID %d source %s, want generation 2 from %s restored",
					live.ID, live.Source, goodPath)
			}
			if got := counter(m, "rolled_back"); got != 1 {
				t.Fatalf("rolled_back counter = %v, want 1", got)
			}
		})
	}
}
