package logreg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		x = append(x, []float64{rng.NormFloat64()})
		if x[i][0] > 0 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	m, err := Train(x, y, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if m.Predict(x[i]) == (y[i] == 1) {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(x)); frac < 0.95 {
		t.Fatalf("accuracy = %v", frac)
	}
	if m.Weights[0] <= 0 {
		t.Fatalf("weight = %v, want positive (positive class at x>0)", m.Weights[0])
	}
}

func TestProbRangeAndMonotone(t *testing.T) {
	m := &Model{Weights: []float64{2}, Bias: -1}
	prev := -1.0
	for v := -5.0; v <= 5; v += 0.5 {
		p := m.Prob([]float64{v})
		if p <= 0 || p >= 1 {
			t.Fatalf("prob %v out of (0,1)", p)
		}
		if p < prev {
			t.Fatal("sigmoid not monotone in the margin")
		}
		prev = p
	}
	if math.Abs(m.Prob([]float64{0.5})-0.5) > 1e-12 {
		t.Fatal("prob at decision boundary != 0.5")
	}
}

func TestPosWeightRaisesRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		v := rng.NormFloat64() - 0.8
		lab := 0
		if i%8 == 0 {
			v += 1.6
			lab = 1
		}
		x = append(x, []float64{v})
		y = append(y, lab)
	}
	recall := func(pw float64) float64 {
		m, err := Train(x, y, Config{PosWeight: pw, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		tp, pos := 0, 0
		for i := range x {
			if y[i] == 1 {
				pos++
				if m.Predict(x[i]) {
					tp++
				}
			}
		}
		return float64(tp) / float64(pos)
	}
	if recall(8) < recall(1) {
		t.Fatalf("PosWeight lowered recall: %v vs %v", recall(8), recall(1))
	}
}

func TestL2ShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		x = append(x, []float64{rng.NormFloat64() * 3})
		if x[i][0] > 0 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	small, err := Train(x, y, Config{L2: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Train(x, y, Config{L2: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(big.Weights[0]) >= math.Abs(small.Weights[0]) {
		t.Fatalf("L2 did not shrink weights: %v vs %v", big.Weights[0], small.Weights[0])
	}
}

func TestValidation(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := Train([][]float64{{1}}, []int{3}, Config{}); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, err := Train([][]float64{{1}, {2, 3}}, []int{0, 1}, Config{}); err == nil {
		t.Fatal("ragged input accepted")
	}
	if _, err := Train([][]float64{{1}, {2}}, []int{1, 1}, Config{}); err == nil {
		t.Fatal("single class accepted")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var x [][]float64
	var y []int
	for i := 0; i < 100; i++ {
		x = append(x, []float64{rng.NormFloat64(), rng.NormFloat64()})
		if x[i][0]+x[i][1] > 0 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	a, err := Train(x, y, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(x, y, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Prob([]float64{0.3, -0.1}) != b.Prob([]float64{0.3, -0.1}) {
		t.Fatal("training not deterministic")
	}
}
