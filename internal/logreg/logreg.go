// Package logreg implements L2-regularized logistic regression trained
// with mini-batch SGD — the simplest probabilistic baseline in the
// shallow hotspot-detection family, and a useful calibration reference
// for the margin-based models.
package logreg

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Config parameterizes training.
type Config struct {
	// Epochs over the data (default 50).
	Epochs int
	// BatchSize per SGD step (default 32).
	BatchSize int
	// LR is the learning rate (default 0.1).
	LR float64
	// L2 is the ridge penalty (default 1e-4).
	L2 float64
	// PosWeight scales the loss of positive samples (imbalance handling;
	// default 1).
	PosWeight float64
	// Seed drives shuffling and initialization.
	Seed int64
}

func (c *Config) normalize() {
	if c.Epochs <= 0 {
		c.Epochs = 50
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 0.1
	}
	if c.L2 < 0 {
		c.L2 = 0
	}
	if c.PosWeight <= 0 {
		c.PosWeight = 1
	}
}

// Model is a trained logistic-regression classifier.
type Model struct {
	Weights []float64
	Bias    float64
}

// Train fits the model on X with binary labels y.
func Train(x [][]float64, y []int, cfg Config) (*Model, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("logreg: bad training set: %d samples, %d labels", n, len(y))
	}
	dim := len(x[0])
	hasPos, hasNeg := false, false
	for i := range x {
		if len(x[i]) != dim {
			return nil, fmt.Errorf("logreg: sample %d has dim %d, want %d", i, len(x[i]), dim)
		}
		switch y[i] {
		case 0:
			hasNeg = true
		case 1:
			hasPos = true
		default:
			return nil, fmt.Errorf("logreg: label %d at sample %d", y[i], i)
		}
	}
	if !hasPos || !hasNeg {
		return nil, errors.New("logreg: training set needs both classes")
	}
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	m := &Model{Weights: make([]float64, dim)}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	gw := make([]float64, dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			for j := range gw {
				gw[j] = 0
			}
			gb := 0.0
			for _, idx := range order[start:end] {
				p := m.Prob(x[idx])
				t := float64(y[idx])
				w := 1.0
				if y[idx] == 1 {
					w = cfg.PosWeight
				}
				g := w * (p - t)
				for j, v := range x[idx] {
					gw[j] += g * v
				}
				gb += g
			}
			scale := cfg.LR / float64(end-start)
			for j := range m.Weights {
				m.Weights[j] -= scale*gw[j] + cfg.LR*cfg.L2*m.Weights[j]
			}
			m.Bias -= scale * gb
		}
	}
	return m, nil
}

// Prob returns P(hotspot | x).
func (m *Model) Prob(x []float64) float64 {
	s := m.Bias
	for j, v := range x {
		s += m.Weights[j] * v
	}
	return 1 / (1 + math.Exp(-s))
}

// Predict thresholds Prob at 0.5.
func (m *Model) Predict(x []float64) bool { return m.Prob(x) > 0.5 }
