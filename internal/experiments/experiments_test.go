package experiments

import (
	"strings"
	"sync"
	"testing"

	hsd "github.com/golitho/hsd"
)

var (
	onceSuite sync.Once
	suite     *hsd.Suite
	suiteErr  error
)

func testSuite(t *testing.T) *hsd.Suite {
	t.Helper()
	onceSuite.Do(func() {
		cfg := hsd.SmallSuiteConfig(31)
		cfg.Specs = []hsd.BenchmarkSpec{
			{Name: "E1", Style: hsd.DefaultPatternStyle(),
				TrainHS: 10, TrainNHS: 40, TestHS: 6, TestNHS: 25},
			{Name: "E2", Style: hsd.DefaultPatternStyle(),
				TrainHS: 8, TrainNHS: 30, TestHS: 5, TestNHS: 20},
		}
		suite, suiteErr = hsd.GenerateSuite(cfg)
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suite
}

func cheapSpecs() []hsd.DetectorSpec {
	return []hsd.DetectorSpec{
		{Name: "PM", New: hsd.StandardPM},
		{Name: "Boost", New: hsd.StandardAdaBoost, Deep: true}, // abuse Deep for split test
	}
}

func TestTableString(t *testing.T) {
	tbl := Table{
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"333333", "4"}},
	}
	s := tbl.String()
	if !strings.Contains(s, "== demo ==") || !strings.Contains(s, "long-header") {
		t.Fatalf("bad render:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count = %d", len(lines))
	}
}

func TestBenchStats(t *testing.T) {
	s := testSuite(t)
	tbl := BenchStats(s)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][1] != "10" || tbl.Rows[0][2] != "40" {
		t.Fatalf("row = %v", tbl.Rows[0])
	}
}

func TestRunZooAndDerivedTables(t *testing.T) {
	s := testSuite(t)
	results, err := RunZoo(s, cheapSpecs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(results[0].Results) != 2 {
		t.Fatalf("result shape wrong: %d specs", len(results))
	}
	tbl := DetectorTable("Table II test", s, results)
	if len(tbl.Rows) != 2 {
		t.Fatalf("detector table rows = %d", len(tbl.Rows))
	}
	sum := Summary(results)
	if len(sum.Rows) != 2 {
		t.Fatalf("summary rows = %d", len(sum.Rows))
	}
	roc, err := ROCFig(s, "E1", results)
	if err != nil {
		t.Fatal(err)
	}
	if len(roc.Rows) != 2 {
		t.Fatalf("roc rows = %d", len(roc.Rows))
	}
	if _, err := ROCFig(s, "NOPE", results); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSplitZoo(t *testing.T) {
	shallow, deep := SplitZoo(cheapSpecs())
	if len(shallow) != 1 || len(deep) != 1 {
		t.Fatalf("split = %d/%d", len(shallow), len(deep))
	}
}

func TestFeatureAblation(t *testing.T) {
	s := testSuite(t)
	tbl, err := FeatureAblation(s, "E1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("ablation rows = %d", len(tbl.Rows))
	}
}

func TestTprAt(t *testing.T) {
	pts := []hsd.ROCPoint{
		{FPR: 0, TPR: 0}, {FPR: 0.05, TPR: 0.5}, {FPR: 0.3, TPR: 0.9}, {FPR: 1, TPR: 1},
	}
	if got := tprAt(pts, 0.1); got != 0.5 {
		t.Fatalf("tprAt(0.1) = %v", got)
	}
	if got := tprAt(pts, 1); got != 1 {
		t.Fatalf("tprAt(1) = %v", got)
	}
	if got := tprAt(pts, 0.001); got != 0 {
		t.Fatalf("tprAt(0.001) = %v", got)
	}
}

func TestFindBenchErrors(t *testing.T) {
	s := testSuite(t)
	if _, err := findBench(s, "missing"); err == nil {
		t.Fatal("missing benchmark accepted")
	}
	if _, err := BiasSweep(s, "missing", 1, []float64{0}); err == nil {
		t.Fatal("bias sweep on missing benchmark accepted")
	}
	if _, err := Convergence(s, "missing", 1); err == nil {
		t.Fatal("convergence on missing benchmark accepted")
	}
}
