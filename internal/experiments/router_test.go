package experiments

import (
	"os"
	"testing"

	hsd "github.com/golitho/hsd"
)

func TestRouterFrontierUnknownBench(t *testing.T) {
	s := testSuite(t)
	if _, _, err := RouterFrontier(s, "missing", 1, nil, false); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestRouterFrontierSmoke is the ci.sh router gate (scripts/
// router_smoke.sh): it trains the routed cascade and its members on a
// fixed-seed benchmark and asserts the deterministic half of the
// frontier claim — the router's recall is no worse than the boost-only
// row AND no worse than the deep CNN row, while the deep stage only
// sees the escalated band. Training is seeded, so these quantities are
// identical run to run; wall-clock ODST dominance is recorded
// separately by run_bench.sh chunk G (BENCH_router.json), because
// asserting wall time here would make CI flaky on loaded boxes.
//
// Gated behind HSD_ROUTER_SMOKE=1 because it trains two CNNs (tens of
// seconds, minutes under -race) on every `go test ./...`.
func TestRouterFrontierSmoke(t *testing.T) {
	if os.Getenv("HSD_ROUTER_SMOKE") == "" {
		t.Skip("set HSD_ROUTER_SMOKE=1 to run the router frontier smoke gate")
	}
	const seed = 909
	cfg := hsd.SmallSuiteConfig(seed)
	cfg.Specs = []hsd.BenchmarkSpec{{
		Name:    "RS1",
		Style:   hsd.DefaultPatternStyle(),
		TrainHS: 40, TrainNHS: 160,
		TestHS: 25, TestNHS: 100,
	}}
	suite, err := hsd.GenerateSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, stats, err := RouterFrontier(suite, "RS1", seed, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if len(tbl.Rows) != 4 {
		t.Fatalf("frontier rows = %d, want 4", len(tbl.Rows))
	}
	if len(stats) != 3 {
		t.Fatalf("router stage stats = %d, want 3", len(stats))
	}

	// Re-evaluate the rows under comparison from scratch so the
	// assertions read structured results, not rendered strings.
	b := suite.Benchmarks[0]
	train, test := hsd.FromSamples(b.Train.Samples), hsd.FromSamples(b.Test.Samples)
	boost, err := hsd.Evaluate(hsd.StandardAdaBoost(), b.Name, train, test, hsd.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cnn, err := hsd.Evaluate(hsd.StandardCNN(seed, 0.25, "cnn-biased"), b.Name, train, test,
		hsd.EvalOptions{Augment: hsd.StandardAugment()})
	if err != nil {
		t.Fatal(err)
	}
	rt := hsd.StandardRouter(seed)
	router, err := hsd.Evaluate(rt, b.Name, train, test, hsd.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("boost  recall=%.3f fa=%d", boost.Accuracy(), boost.FalseAlarms())
	t.Logf("cnn    recall=%.3f fa=%d", cnn.Accuracy(), cnn.FalseAlarms())
	t.Logf("router recall=%.3f fa=%d", router.Accuracy(), router.FalseAlarms())
	for _, s := range rt.Stats() {
		t.Logf("stage %-10s answered %d (hot %d cold %d) escalated %d",
			s.Name, s.Answered(), s.AnsweredHot, s.AnsweredCold, s.Escalated)
	}

	if router.Accuracy() < boost.Accuracy() {
		t.Errorf("router recall %.3f below boost-only %.3f",
			router.Accuracy(), boost.Accuracy())
	}
	// The dominance condition of the frontier claim: recall no worse
	// than the deep row the router escalates to. Its ODST half (deep
	// stage runs on a fraction of clips → lower cost) is measured by
	// chunk G, not asserted against wall time here.
	if router.Accuracy() < cnn.Accuracy() {
		t.Errorf("router recall %.3f below deep-row %.3f",
			router.Accuracy(), cnn.Accuracy())
	}
	// The point of routing: the deep stage must see only the uncertain
	// band, not the whole test split.
	st := rt.Stats()
	deep := st[len(st)-1].Answered()
	if total := int64(len(test)); deep >= total {
		t.Errorf("deep stage answered %d of %d clips — nothing routed early", deep, total)
	}
}
