// Package experiments regenerates every table and figure of the
// reconstructed evaluation plan (see DESIGN.md §3). The root benchmark
// harness (bench_test.go) and cmd/hsdeval both drive these functions, so
// the printed artifacts are identical either way.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	hsd "github.com/golitho/hsd"
)

// Table is a printable experiment artifact.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func dur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// BenchStats regenerates Table I: per-benchmark sample statistics.
func BenchStats(suite *hsd.Suite) Table {
	t := Table{
		Title:  "Table I: benchmark statistics (synthetic ICCAD-2012-style suite)",
		Header: []string{"bench", "train HS", "train NHS", "test HS", "test NHS", "imbalance", "avg PVband(nm^2)"},
	}
	for _, b := range suite.Benchmarks {
		trHS, trNHS := b.Train.Counts()
		teHS, teNHS := b.Test.Counts()
		var pv float64
		n := 0
		for _, s := range b.Train.Samples {
			pv += s.PVBandArea
			n++
		}
		if n > 0 {
			pv /= float64(n)
		}
		imb := "-"
		if trHS > 0 {
			imb = fmt.Sprintf("1:%.1f", float64(trNHS)/float64(trHS))
		}
		t.Rows = append(t.Rows, []string{
			b.Name,
			fmt.Sprint(trHS), fmt.Sprint(trNHS),
			fmt.Sprint(teHS), fmt.Sprint(teNHS),
			imb, fmt.Sprintf("%.0f", pv),
		})
	}
	return t
}

// DetectorResults holds the per-benchmark outcomes of one detector spec.
type DetectorResults struct {
	Spec    hsd.DetectorSpec
	Results []hsd.EvalResult // one per benchmark, in suite order
}

// RunZoo evaluates the given detector specs across the whole suite,
// returning results grouped by spec. Sim enables ODST measurement.
func RunZoo(suite *hsd.Suite, specs []hsd.DetectorSpec, sim *hsd.Simulator) ([]DetectorResults, error) {
	return RunZooCtx(context.Background(), suite, specs, sim)
}

// RunZooCtx is RunZoo with trace attribution: each evaluation becomes
// an "eval" span (with fit/score/verify children) on the ctx tracer, so
// a -trace run of hsdeval attributes ODST to pipeline stages per
// detector and benchmark.
func RunZooCtx(ctx context.Context, suite *hsd.Suite, specs []hsd.DetectorSpec, sim *hsd.Simulator) ([]DetectorResults, error) {
	out := make([]DetectorResults, 0, len(specs))
	for _, spec := range specs {
		dr := DetectorResults{Spec: spec}
		for _, b := range suite.Benchmarks {
			res, err := hsd.EvaluateCtx(ctx, spec.New(), b.Name,
				hsd.FromSamples(b.Train.Samples), hsd.FromSamples(b.Test.Samples),
				hsd.EvalOptions{Sim: sim, Augment: spec.Augment})
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %w", spec.Name, b.Name, err)
			}
			dr.Results = append(dr.Results, res)
		}
		out = append(out, dr)
	}
	return out, nil
}

// DetectorTable regenerates Table II (shallow) or Table III (deep):
// accuracy / false alarms / ODST per benchmark.
func DetectorTable(title string, suite *hsd.Suite, results []DetectorResults) Table {
	t := Table{Title: title}
	t.Header = []string{"detector"}
	for _, b := range suite.Benchmarks {
		t.Header = append(t.Header,
			b.Name+" acc", b.Name+" FA", b.Name+" ODST")
	}
	t.Header = append(t.Header, "avg acc", "total FA")
	for _, dr := range results {
		row := []string{dr.Spec.Name}
		var accSum float64
		faSum := 0
		for _, r := range dr.Results {
			row = append(row, pct(r.Accuracy()), fmt.Sprint(r.FalseAlarms()), dur(r.ODST()))
			accSum += r.Accuracy()
			faSum += r.FalseAlarms()
		}
		row = append(row, pct(accSum/float64(len(dr.Results))), fmt.Sprint(faSum))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Summary regenerates Table IV: the shallow-vs-deep aggregate with ODST
// speedups over full lithography simulation.
func Summary(results []DetectorResults) Table {
	t := Table{
		Title: "Table IV: shallow vs deep summary",
		Header: []string{"detector", "avg acc", "avg AUC", "total FA",
			"total ODST", "total full-sim", "speedup"},
	}
	for _, dr := range results {
		var acc, auc float64
		fa := 0
		var odst, full time.Duration
		for _, r := range dr.Results {
			acc += r.Accuracy()
			auc += r.AUC
			fa += r.FalseAlarms()
			odst += r.ODST()
			full += r.FullSimTime
		}
		n := float64(len(dr.Results))
		speedup := "-"
		if odst > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(full)/float64(odst))
		}
		t.Rows = append(t.Rows, []string{
			dr.Spec.Name, pct(acc / n), f3(auc / n), fmt.Sprint(fa),
			dur(odst), dur(full), speedup,
		})
	}
	return t
}

// ROCFig regenerates Fig. 2: TPR at fixed FPR operating points for each
// detector on one benchmark (a printable ROC comparison).
func ROCFig(suite *hsd.Suite, benchName string, results []DetectorResults) (Table, error) {
	bi := -1
	for i, b := range suite.Benchmarks {
		if b.Name == benchName {
			bi = i
			break
		}
	}
	if bi < 0 {
		return Table{}, fmt.Errorf("experiments: benchmark %q not in suite", benchName)
	}
	fprGrid := []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5}
	t := Table{
		Title:  fmt.Sprintf("Fig. 2: ROC on %s (TPR at fixed FPR)", benchName),
		Header: []string{"detector", "AUC"},
	}
	for _, f := range fprGrid {
		t.Header = append(t.Header, fmt.Sprintf("TPR@%.0f%%", 100*f))
	}
	for _, dr := range results {
		r := dr.Results[bi]
		pts, auc, err := hsd.ROC(r.Scores, r.Labels)
		if err != nil {
			// Degenerate scores (e.g. empty PM library): report dashes.
			row := []string{dr.Spec.Name, "-"}
			for range fprGrid {
				row = append(row, "-")
			}
			t.Rows = append(t.Rows, row)
			continue
		}
		row := []string{dr.Spec.Name, f3(auc)}
		for _, f := range fprGrid {
			row = append(row, f3(tprAt(pts, f)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// tprAt returns the highest TPR achievable at FPR <= limit.
func tprAt(pts []hsd.ROCPoint, limit float64) float64 {
	best := 0.0
	for _, p := range pts {
		if p.FPR <= limit && p.TPR > best {
			best = p.TPR
		}
	}
	return best
}

// BiasSweep regenerates Fig. 3: CNN accuracy and false alarms as the
// biased-learning epsilon grows.
func BiasSweep(suite *hsd.Suite, benchName string, seed int64, epss []float64) (Table, error) {
	b, err := findBench(suite, benchName)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  fmt.Sprintf("Fig. 3: biased-learning sweep on %s", benchName),
		Header: []string{"bias eps", "accuracy", "false alarms", "precision", "F1"},
	}
	train, test := hsd.FromSamples(b.Train.Samples), hsd.FromSamples(b.Test.Samples)
	for _, eps := range epss {
		det := hsd.StandardCNN(seed, eps, fmt.Sprintf("cnn-e%.2f", eps))
		res, err := hsd.Evaluate(det, b.Name, train, test,
			hsd.EvalOptions{Augment: hsd.StandardAugment()})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", eps), pct(res.Accuracy()),
			fmt.Sprint(res.FalseAlarms()), f3(res.Confusion.Precision()),
			f3(res.Confusion.F1()),
		})
	}
	return t, nil
}

// ImbalanceSweep regenerates Fig. 4: CNN accuracy vs minority upsampling
// factor (with and without mirror augmentation at factor 4).
func ImbalanceSweep(suite *hsd.Suite, benchName string, seed int64, factors []int) (Table, error) {
	b, err := findBench(suite, benchName)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  fmt.Sprintf("Fig. 4: imbalance ablation on %s", benchName),
		Header: []string{"upsample", "mirror", "accuracy", "false alarms", "F1"},
	}
	train, test := hsd.FromSamples(b.Train.Samples), hsd.FromSamples(b.Test.Samples)
	run := func(factor int, mirror bool) error {
		det := hsd.StandardCNN(seed, 0.25, fmt.Sprintf("cnn-u%d", factor))
		res, err := hsd.Evaluate(det, b.Name, train, test, hsd.EvalOptions{
			Augment: hsd.AugmentConfig{UpsampleFactor: factor, Mirror: mirror},
		})
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(factor), fmt.Sprint(mirror), pct(res.Accuracy()),
			fmt.Sprint(res.FalseAlarms()), f3(res.Confusion.F1()),
		})
		return nil
	}
	for _, f := range factors {
		if err := run(f, false); err != nil {
			return Table{}, err
		}
	}
	if err := run(4, true); err != nil {
		return Table{}, err
	}
	return t, nil
}

// ODSTScaling regenerates Fig. 5: detection cost vs chip area for a
// trained detector against full lithography simulation of every window.
func ODSTScaling(suite *hsd.Suite, seed int64, edgesNM []int) (Table, error) {
	if len(suite.Benchmarks) == 0 {
		return Table{}, fmt.Errorf("experiments: empty suite")
	}
	b := suite.Benchmarks[0]
	det := hsd.StandardAdaBoost()
	if err := det.Fit(hsd.FromSamples(b.Train.Samples)); err != nil {
		return Table{}, err
	}
	sim, err := hsd.NewSimulator(hsd.DefaultSimConfig())
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title: "Fig. 5: ODST scaling with layout area (AdaBoost vs full simulation)",
		Header: []string{"chip edge (um)", "windows", "flagged",
			"scan time", "verify time", "ODST", "full-sim time", "speedup"},
	}
	for _, edge := range edgesNM {
		chip, err := hsd.GenerateChip(seed, edge, hsd.DefaultPatternStyle())
		if err != nil {
			return Table{}, err
		}
		t0 := time.Now()
		findings, err := hsd.Scan(chip, det, hsd.ScanConfig{SkipEmpty: true})
		if err != nil {
			return Table{}, err
		}
		scanTime := time.Since(t0)

		// Verify flagged windows with the simulator.
		t1 := time.Now()
		for _, f := range findings {
			clip, err := chip.ClipAt(f.Center, 1024, 0.5)
			if err != nil {
				return Table{}, err
			}
			if _, err := sim.Simulate(clip); err != nil {
				return Table{}, err
			}
		}
		verifyTime := time.Since(t1)

		// Full simulation baseline: simulate a sample of windows and
		// extrapolate (simulating everything at large edges would defeat
		// the point of the figure).
		stride := 512
		nWindows := (edge/stride + 1) * (edge/stride + 1)
		const probeN = 16
		t2 := time.Now()
		probed := 0
		for i := 0; i < probeN; i++ {
			cx := 512 + (i*edge/probeN/stride)*stride
			clip, err := chip.ClipAt(hsd.Pt(cx, 512+cx%1024), 1024, 0.5)
			if err != nil {
				return Table{}, err
			}
			if _, err := sim.Simulate(clip); err != nil {
				return Table{}, err
			}
			probed++
		}
		fullSim := time.Since(t2) / time.Duration(probed) * time.Duration(nWindows)

		odst := scanTime + verifyTime
		speedup := "-"
		if odst > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(fullSim)/float64(odst))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", float64(edge)/1000), fmt.Sprint(nWindows),
			fmt.Sprint(len(findings)), dur(scanTime), dur(verifyTime),
			dur(odst), dur(fullSim), speedup,
		})
	}
	return t, nil
}

// Convergence regenerates Fig. 6: CNN training loss and accuracy per epoch.
func Convergence(suite *hsd.Suite, benchName string, seed int64) (Table, error) {
	b, err := findBench(suite, benchName)
	if err != nil {
		return Table{}, err
	}
	det := hsd.StandardCNN(seed, 0.25, "cnn-conv")
	_, err = hsd.Evaluate(det, b.Name,
		hsd.FromSamples(b.Train.Samples), hsd.FromSamples(b.Test.Samples),
		hsd.EvalOptions{Augment: hsd.StandardAugment()})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  fmt.Sprintf("Fig. 6: CNN training convergence on %s", benchName),
		Header: []string{"epoch", "loss", "train acc"},
	}
	for _, e := range det.History() {
		t.Rows = append(t.Rows, []string{fmt.Sprint(e.Epoch), fmt.Sprintf("%.4f", e.Loss), f3(e.Acc)})
	}
	return t, nil
}

// FrontierRow is one accuracy-vs-ODST operating point of the router
// frontier. DeepFrac is the fraction of test clips the deep stage
// answered (-1 for non-router rows).
type FrontierRow struct {
	Name        string
	Recall      float64
	FalseAlarms int
	AUC         float64
	ODST        time.Duration
	DeepFrac    float64
}

// RouterFrontierRows evaluates each cascade member alone on one
// benchmark against the Router that unifies them (EPIC-style
// meta-classification; DESIGN.md §15). The frontier claim is dominance:
// the router holds the deep detector's recall while the deep stage only
// sees the uncertain band, so its ODST lands below the member it
// matches. The returned stage stats are the default router's test-split
// routing breakdown (one entry per stage).
//
// With extended=true two more operating points join the sweep: the
// unbiased CNN zoo row, and the router re-fit at a looser per-stage
// error budget (eps=0.05), which trades a slice of the escalated band
// for ODST and is the point that strictly dominates the unbiased CNN
// row on B1 (better recall at lower ODST).
func RouterFrontierRows(suite *hsd.Suite, benchName string, seed int64, sim *hsd.Simulator, extended bool) ([]FrontierRow, []hsd.RouterStageStats, error) {
	b, err := findBench(suite, benchName)
	if err != nil {
		return nil, nil, err
	}
	train, test := hsd.FromSamples(b.Train.Samples), hsd.FromSamples(b.Test.Samples)
	type frontierCase struct {
		name string
		det  hsd.Detector
		aug  hsd.AugmentConfig
	}
	cases := []frontierCase{
		{"PM-fuzzy", hsd.StandardFuzzyPM(), hsd.AugmentConfig{}},
		{"AdaBoost", hsd.StandardAdaBoost(), hsd.AugmentConfig{}},
		{"CNN-biased", hsd.StandardCNN(seed, 0.25, "cnn-biased"), hsd.StandardAugment()},
		// The router augments its member-fit split internally, so the
		// evaluation augment stays empty (bands calibrate on real balance).
		{"Router", hsd.StandardRouter(seed), hsd.AugmentConfig{}},
	}
	if extended {
		loose := hsd.StandardRouter(seed)
		loose.SetMaxStageError(0.05)
		cases = append(cases,
			frontierCase{"CNN", hsd.StandardCNN(seed, 0, "cnn"), hsd.StandardAugment()},
			frontierCase{"Router eps=.05", loose, hsd.AugmentConfig{}},
		)
	}
	var rows []FrontierRow
	var stats []hsd.RouterStageStats
	for _, c := range cases {
		res, err := hsd.Evaluate(c.det, b.Name, train, test,
			hsd.EvalOptions{Sim: sim, Augment: c.aug})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: frontier %s: %w", c.name, err)
		}
		row := FrontierRow{
			Name: c.name, Recall: res.Accuracy(), FalseAlarms: res.FalseAlarms(),
			AUC: res.AUC, ODST: res.ODST(), DeepFrac: -1,
		}
		if rt, ok := c.det.(*hsd.RouterDetector); ok {
			rs := rt.Stats()
			if last := rs[len(rs)-1]; len(test) > 0 {
				row.DeepFrac = float64(last.Answered()) / float64(len(test))
			}
			if c.name == "Router" {
				stats = rs
			}
		}
		rows = append(rows, row)
	}
	return rows, stats, nil
}

// RouterFrontier renders RouterFrontierRows as a printable table.
func RouterFrontier(suite *hsd.Suite, benchName string, seed int64, sim *hsd.Simulator, extended bool) (Table, []hsd.RouterStageStats, error) {
	rows, stats, err := RouterFrontierRows(suite, benchName, seed, sim, extended)
	if err != nil {
		return Table{}, nil, err
	}
	return RenderFrontier(benchName, rows), stats, nil
}

// RenderFrontier renders already-evaluated frontier rows, so callers
// holding RouterFrontierRows output need not re-train the cascade.
func RenderFrontier(benchName string, rows []FrontierRow) Table {
	t := Table{
		Title:  fmt.Sprintf("Router frontier on %s (recall vs ODST)", benchName),
		Header: []string{"detector", "recall", "FA", "AUC", "ODST", "deep-stage clips"},
	}
	for _, r := range rows {
		deepCol := "-"
		if r.DeepFrac >= 0 {
			deepCol = pct(r.DeepFrac)
		}
		t.Rows = append(t.Rows, []string{
			r.Name, pct(r.Recall), fmt.Sprint(r.FalseAlarms),
			f3(r.AUC), dur(r.ODST), deepCol,
		})
	}
	return t
}

func findBench(suite *hsd.Suite, name string) (hsd.Benchmark, error) {
	for _, b := range suite.Benchmarks {
		if b.Name == name {
			return b, nil
		}
	}
	return hsd.Benchmark{}, fmt.Errorf("experiments: benchmark %q not in suite", name)
}

// SplitZoo partitions specs into the shallow (Table II) and deep
// (Table III) groups.
func SplitZoo(specs []hsd.DetectorSpec) (shallow, deep []hsd.DetectorSpec) {
	for _, s := range specs {
		if s.Deep {
			deep = append(deep, s)
		} else {
			shallow = append(shallow, s)
		}
	}
	return shallow, deep
}

// FeatureAblation regenerates the feature-engineering ablation: the same
// AdaBoost learner trained on each feature family alone and on the fused
// view, quantifying how much the hand-crafted CD histograms carry.
func FeatureAblation(suite *hsd.Suite, benchName string) (Table, error) {
	b, err := findBench(suite, benchName)
	if err != nil {
		return Table{}, err
	}
	train, test := hsd.FromSamples(b.Train.Samples), hsd.FromSamples(b.Test.Samples)
	cases := []struct {
		name string
		ex   hsd.FeatureExtractor
	}{
		{"geomstats only", &hsd.GeomStats{}},
		{"density32 only", &hsd.Density{Grid: 32}},
		{"ccas only", &hsd.CCAS{Rings: 8, Sectors: 12}},
		{"fused (all three)", hsd.NewConcatFeatures(
			&hsd.GeomStats{}, &hsd.Density{Grid: 32}, &hsd.CCAS{Rings: 8, Sectors: 12})},
	}
	t := Table{
		Title:  fmt.Sprintf("Ablation A: feature families (AdaBoost on %s)", benchName),
		Header: []string{"features", "dim", "accuracy", "false alarms", "AUC", "F1"},
	}
	for _, c := range cases {
		det := hsd.NewBoostDetector(c.ex, hsd.BoostConfig{Rounds: 150, ClassBalance: true})
		res, err := hsd.Evaluate(det, b.Name, train, test, hsd.EvalOptions{})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			c.name, fmt.Sprint(c.ex.Dim()), pct(res.Accuracy()),
			fmt.Sprint(res.FalseAlarms()), f3(res.AUC), f3(res.Confusion.F1()),
		})
	}
	return t, nil
}

// DCTCoefAblation regenerates the feature-tensor compression ablation:
// CNN quality as the number of retained zigzag DCT coefficients grows.
func DCTCoefAblation(suite *hsd.Suite, benchName string, seed int64, coefs []int) (Table, error) {
	b, err := findBench(suite, benchName)
	if err != nil {
		return Table{}, err
	}
	train, test := hsd.FromSamples(b.Train.Samples), hsd.FromSamples(b.Test.Samples)
	t := Table{
		Title:  fmt.Sprintf("Ablation B: DCT coefficients per block (CNN on %s)", benchName),
		Header: []string{"coefs", "tensor", "accuracy", "false alarms", "AUC"},
	}
	for _, c := range coefs {
		ex := &hsd.DCTFeatures{Blocks: 16, Coefs: c}
		det := hsd.NewCNNDetector(ex,
			hsd.CNNConfig{Conv1: 16, Conv2: 24, Hidden: 48, DropoutP: 0.1, Seed: seed},
			hsd.TrainConfig{Epochs: 16, BatchSize: 32, Seed: seed},
			fmt.Sprintf("cnn-c%d", c))
		det.NoScale = true
		res, err := hsd.Evaluate(det, b.Name, train, test,
			hsd.EvalOptions{Augment: hsd.StandardAugment()})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(c), fmt.Sprintf("16x16x%d", c), pct(res.Accuracy()),
			fmt.Sprint(res.FalseAlarms()), f3(res.AUC),
		})
	}
	return t, nil
}
