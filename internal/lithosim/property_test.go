package lithosim

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/raster"
)

func randomTestClip(t *testing.T, rng *rand.Rand) layout.Clip {
	t.Helper()
	l := layout.New("prop")
	n := 2 + rng.Intn(8)
	for i := 0; i < n; i++ {
		x, y := rng.Intn(900), rng.Intn(900)
		w, h := 48+8*rng.Intn(16), 48+8*rng.Intn(16)
		if err := l.AddRect(geom.R(x, y, x+w, y+h)); err != nil {
			t.Fatal(err)
		}
	}
	clip, err := l.ClipAt(geom.Pt(512, 512), 1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return clip
}

// TestDoseMonotonicity: lowering the resist threshold can only grow the
// printed region (pixel-wise superset).
func TestDoseMonotonicity(t *testing.T) {
	s := newSim(t)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		clip := randomTestClip(t, rng)
		im, err := raster.Rasterize(raster.Config{Window: clip.Window, PixelNM: 8}, clip.Shapes)
		if err != nil {
			t.Fatal(err)
		}
		aer := s.AerialImage(im)
		lo := aer.Threshold(0.45)
		hi := aer.Threshold(0.55)
		for i := range hi.Pix {
			if hi.Pix[i] == 1 && lo.Pix[i] == 0 {
				t.Fatal("higher threshold printed a pixel the lower one did not")
			}
		}
	}
}

// TestAerialBounds: aerial intensities stay within [0, 1] (the mask is a
// coverage image and the kernel is normalized).
func TestAerialBounds(t *testing.T) {
	s := newSim(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		clip := randomTestClip(t, rng)
		im, err := raster.Rasterize(raster.Config{Window: clip.Window, PixelNM: 8}, clip.Shapes)
		if err != nil {
			t.Fatal(err)
		}
		aer := s.AerialImage(im)
		for _, v := range aer.Pix {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("aerial intensity %v out of [0,1]", v)
			}
		}
	}
}

// TestSimulateDeterministic: identical clips yield identical verdicts.
func TestSimulateDeterministic(t *testing.T) {
	s := newSim(t)
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 8; trial++ {
		clip := randomTestClip(t, rng)
		a, err := s.Simulate(clip)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Simulate(clip)
		if err != nil {
			t.Fatal(err)
		}
		if a.Hotspot != b.Hotspot || len(a.Defects) != len(b.Defects) || a.PVBandArea != b.PVBandArea {
			t.Fatal("oracle verdict not deterministic")
		}
	}
}

// TestSimulateConcurrentUse: one simulator must be usable from many
// goroutines (the benchmark generator labels in parallel).
func TestSimulateConcurrentUse(t *testing.T) {
	s := newSim(t)
	rng := rand.New(rand.NewSource(44))
	clips := make([]layout.Clip, 16)
	want := make([]bool, len(clips))
	for i := range clips {
		clips[i] = randomTestClip(t, rng)
		res, err := s.Simulate(clips[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Hotspot
	}
	var wg sync.WaitGroup
	errs := make([]error, len(clips))
	for i := range clips {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				res, err := s.Simulate(clips[i])
				if err != nil {
					errs[i] = err
					return
				}
				if res.Hotspot != want[i] {
					errs[i] = errMismatch
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("clip %d: %v", i, err)
		}
	}
}

var errMismatch = errorString("concurrent verdict mismatch")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestMirrorSymmetryOfOracle: optics is mirror-symmetric, so mirrored
// clips get identical verdicts. (This is the physical justification for
// mirror augmentation.)
func TestMirrorSymmetryOfOracle(t *testing.T) {
	s := newSim(t)
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 8; trial++ {
		clip := randomTestClip(t, rng)
		mirrored := layout.Clip{Window: clip.Window, Core: mirrorRect(clip.Core, clip.Window), Shapes: nil}
		for _, r := range clip.Shapes {
			mirrored.Shapes = append(mirrored.Shapes, mirrorRect(r, clip.Window))
		}
		a, err := s.Simulate(clip)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Simulate(mirrored)
		if err != nil {
			t.Fatal(err)
		}
		if a.Hotspot != b.Hotspot {
			t.Fatalf("trial %d: mirror changed verdict %v -> %v", trial, a.Hotspot, b.Hotspot)
		}
	}
}

func mirrorRect(r, window geom.Rect) geom.Rect {
	ax2 := window.Min.X + window.Max.X
	return geom.R(ax2-r.Min.X, r.Min.Y, ax2-r.Max.X, r.Max.Y)
}
