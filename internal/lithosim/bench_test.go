package lithosim

import (
	"math/rand"
	"testing"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/raster"
)

func benchClip(b *testing.B) layout.Clip {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	l := layout.New("bench")
	y := 0
	for y < 1024 {
		w := 72 + 8*rng.Intn(8)
		if err := l.AddRect(geom.R(-64, y, 1088, y+w)); err != nil {
			b.Fatal(err)
		}
		y += w + 80 + 8*rng.Intn(12)
	}
	clip, err := l.ClipAt(geom.Pt(512, 512), 1024, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	return clip
}

// BenchmarkSimulateClip measures the oracle cost per clip: the unit of
// the ODST verification term.
func BenchmarkSimulateClip(b *testing.B) {
	sim, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	clip := benchClip(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(clip); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAerialImage128(b *testing.B) {
	sim, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	clip := benchClip(b)
	im, err := raster.Rasterize(raster.Config{Window: clip.Window, PixelNM: 8}, clip.Shapes)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.AerialImage(im)
	}
}
