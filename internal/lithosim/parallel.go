// Concurrent process-corner evaluation for SimulateCtx.
//
// The parallel path splits one simulation into independent units — first
// the unique-sigma aerial images (the expensive blurs), then the
// per-corner threshold + geometric checks — and fans them over a bounded
// worker pool. Defect lists and the PV-band fold are assembled serially
// in corner order afterwards, so the Result is identical to the serial
// path for any worker count.

package lithosim

import (
	"context"
	"fmt"
	"runtime"
	"strconv"

	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/raster"
	"github.com/golitho/hsd/internal/tensor"
	"github.com/golitho/hsd/internal/trace"
)

// cornerWorkers resolves the configured worker count: 0 means
// min(NumCPU, corners), anything else is clamped to the corner count.
func (s *Simulator) cornerWorkers() int {
	w := s.cfg.CornerWorkers
	if w == 0 {
		w = runtime.NumCPU()
	}
	if w > len(s.cfg.Corners) {
		w = len(s.cfg.Corners)
	}
	return w
}

// runIndexed fans fn(0..n-1) over the persistent kernel pool
// (tensor.Default) with at most `workers` concurrent shards and waits
// for all of them. fn must confine itself to index-owned state.
func runIndexed(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	tensor.Default().Run(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// firstErr returns the lowest-index non-nil error, making the reported
// interruption corner deterministic regardless of goroutine scheduling.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// simulateParallel evaluates all process corners concurrently. The
// context contract matches the serial path: cancellation is observed at
// unit-of-work boundaries, an interrupted simulation returns the wrapped
// context error, and partial defect lists are never returned.
func (s *Simulator) simulateParallel(ctx context.Context, clip layout.Clip, mask *raster.Image, target *raster.Mask, workers int) (Result, error) {
	corners := s.cfg.Corners
	interrupted := func(i int) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("lithosim: simulation interrupted at corner %q: %w", corners[i].Name, err)
		}
		return nil
	}

	// Phase 1: one aerial image per unique sigma (corners sharing a
	// SigmaScale share the blur, as in the serial path).
	kernelIdx := make(map[float64]int, 2)
	var sigmas []float64
	for i, c := range corners {
		if _, ok := kernelIdx[c.SigmaScale]; !ok {
			kernelIdx[c.SigmaScale] = i
			sigmas = append(sigmas, c.SigmaScale)
		}
	}
	aerials := make([]*raster.Image, len(sigmas))
	errs := make([]error, len(corners))
	runIndexed(workers, len(sigmas), func(j int) {
		ki := kernelIdx[sigmas[j]]
		if err := interrupted(ki); err != nil {
			errs[ki] = err
			return
		}
		_, bsp := trace.Start(ctx, "blur",
			trace.A("sigma", strconv.FormatFloat(sigmas[j], 'g', -1, 64)))
		aerials[j] = blurSeparable(mask, s.kernels[ki])
		bsp.End()
	})
	if err := firstErr(errs); err != nil {
		return Result{}, err
	}
	aerialBySigma := make(map[float64]*raster.Image, len(sigmas))
	for j, sg := range sigmas {
		aerialBySigma[sg] = aerials[j]
	}

	// Phase 2: per-corner resist threshold + geometric checks, each into
	// its own slot.
	printed := make([]*raster.Mask, len(corners))
	defects := make([][]Defect, len(corners))
	runIndexed(workers, len(corners), func(i int) {
		if err := interrupted(i); err != nil {
			errs[i] = err
			return
		}
		corner := corners[i]
		_, csp := trace.Start(ctx, "corner", trace.A("corner", corner.Name))
		p := aerialBySigma[corner.SigmaScale].Threshold(s.cfg.Threshold * corner.ThresholdScale)
		printed[i] = p
		defects[i] = s.checkCorner(clip, target, p, corner.Name)
		csp.SetAttrInt("defects", len(defects[i]))
		csp.End()
	})
	if err := firstErr(errs); err != nil {
		return Result{}, err
	}

	// Serial fold in corner order: byte-for-byte the serial Result.
	var res Result
	var pvOr, pvAnd *raster.Mask
	for i := range corners {
		res.Defects = append(res.Defects, defects[i]...)
		if pvOr == nil {
			pvOr = clonemask(printed[i])
			pvAnd = clonemask(printed[i])
		} else {
			for j := range printed[i].Pix {
				if printed[i].Pix[j] != 0 {
					pvOr.Pix[j] = 1
				} else {
					pvAnd.Pix[j] = 0
				}
			}
		}
	}
	res.Hotspot = len(res.Defects) > 0
	pxArea := float64(s.cfg.PixelNM) * float64(s.cfg.PixelNM)
	res.PVBandArea = float64(pvOr.Count()-pvAnd.Count()) * pxArea
	return res, nil
}
