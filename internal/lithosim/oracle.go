package lithosim

import (
	"context"
	"fmt"
	"time"

	"github.com/golitho/hsd/internal/faultinject"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/raster"
	"github.com/golitho/hsd/internal/trace"
)

// SimulateSite is the faultinject hook name fired at the start of each
// oracle simulation, for chaos-testing verification paths.
const SimulateSite = "lithosim.simulate"

// Simulate runs the full process-window check on a clip and returns the
// hotspot verdict with the defects found. The clip window must be
// non-empty; clips with no drawn shapes are trivially non-hotspots.
func (s *Simulator) Simulate(clip layout.Clip) (Result, error) {
	return s.SimulateCtx(context.Background(), clip)
}

// LabelCtx is the labeling-oracle entry point consumed by the
// active-learning data engine (internal/datengine) and the quality
// monitor's spot-checker: just the hotspot verdict, with panic
// containment. A panicking simulation — corrupt clip geometry, a bug in
// a defect check — comes back as an error, never unwinds the caller,
// so the data engine can count attempts against the sample and
// quarantine it instead of dying.
func (s *Simulator) LabelCtx(ctx context.Context, clip layout.Clip) (hotspot bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			hotspot = false
			err = fmt.Errorf("lithosim: oracle panic: %v", r)
		}
	}()
	res, err := s.SimulateCtx(ctx, clip)
	if err != nil {
		return false, err
	}
	return res.Hotspot, nil
}

// Label is LabelCtx without cancellation, matching the qualitymon
// Oracle signature.
func (s *Simulator) Label(clip layout.Clip) (bool, error) {
	return s.LabelCtx(context.Background(), clip)
}

// SimulateCtx is the context-aware Simulate: cancellation and deadline
// are checked between process corners (the unit of work — one blur +
// three geometric checks — so a cancelled verification stops within one
// corner's latency). An interrupted simulation returns the wrapped
// context error; partial defect lists are never returned.
func (s *Simulator) SimulateCtx(ctx context.Context, clip layout.Clip) (Result, error) {
	if clip.Window.Empty() {
		return Result{}, fmt.Errorf("lithosim: empty clip window")
	}
	if len(clip.Shapes) == 0 {
		return Result{}, nil
	}
	if err := faultinject.Hit(SimulateSite); err != nil {
		return Result{}, fmt.Errorf("lithosim: %w", err)
	}
	// Only clips that reach the optical model count toward measured ODST;
	// validation failures and trivially empty clips cost nothing.
	start := time.Now()
	sctx, ssp := trace.Start(ctx, "lithosim.simulate")
	ssp.SetAttrInt("corners", len(s.cfg.Corners))
	defer ssp.End()
	defer func() {
		s.simCount.Add(1)
		s.simNanos.Add(int64(time.Since(start)))
	}()
	_, rsp := trace.Start(sctx, "raster", trace.A("stage", "mask"))
	mask, err := raster.Rasterize(raster.Config{Window: clip.Window, PixelNM: s.cfg.PixelNM}, clip.Shapes)
	rsp.SetError(err)
	rsp.End()
	if err != nil {
		return Result{}, fmt.Errorf("lithosim: rasterize clip: %w", err)
	}

	// target is the drawn pattern at raster resolution, shared by every
	// corner's geometric checks.
	target := mask.Threshold(0.5)
	if w := s.cornerWorkers(); w > 1 {
		return s.simulateParallel(sctx, clip, mask, target, w)
	}

	// Aerial images are shared between corners with equal sigma.
	aerialBySigma := make(map[float64]*raster.Image, 2)
	var res Result
	var pvOr, pvAnd *raster.Mask

	for i, corner := range s.cfg.Corners {
		if err := ctx.Err(); err != nil {
			err = fmt.Errorf("lithosim: simulation interrupted at corner %q: %w", corner.Name, err)
			ssp.SetError(err)
			return Result{}, err
		}
		_, csp := trace.Start(sctx, "corner", trace.A("corner", corner.Name))
		aer := aerialBySigma[corner.SigmaScale]
		if aer == nil {
			aer = blurSeparable(mask, s.kernels[i])
			aerialBySigma[corner.SigmaScale] = aer
		}
		printed := aer.Threshold(s.cfg.Threshold * corner.ThresholdScale)
		cornerDefects := s.checkCorner(clip, target, printed, corner.Name)
		csp.SetAttrInt("defects", len(cornerDefects))
		csp.End()
		res.Defects = append(res.Defects, cornerDefects...)

		if pvOr == nil {
			pvOr = clonemask(printed)
			pvAnd = clonemask(printed)
		} else {
			for j := range printed.Pix {
				if printed.Pix[j] != 0 {
					pvOr.Pix[j] = 1
				} else {
					pvAnd.Pix[j] = 0
				}
			}
		}
	}
	res.Hotspot = len(res.Defects) > 0
	pxArea := float64(s.cfg.PixelNM) * float64(s.cfg.PixelNM)
	res.PVBandArea = float64(pvOr.Count()-pvAnd.Count()) * pxArea
	return res, nil
}

func clonemask(m *raster.Mask) *raster.Mask {
	out := raster.NewMask(m.W, m.H)
	copy(out.Pix, m.Pix)
	return out
}

// pxRect converts a layout-space rect to pixel space relative to the window.
func (s *Simulator) pxRect(window, r geom.Rect) geom.Rect {
	p := s.cfg.PixelNM
	return geom.R(
		(r.Min.X-window.Min.X)/p, (r.Min.Y-window.Min.Y)/p,
		(r.Max.X-window.Min.X+p-1)/p, (r.Max.Y-window.Min.Y+p-1)/p,
	)
}

// checkCorner runs bridge, neck/open, and EPE checks on one printed mask.
// target is the drawn pattern at raster resolution.
func (s *Simulator) checkCorner(clip layout.Clip, target, printed *raster.Mask, corner string) []Defect {
	var defects []Defect
	corePx := s.pxRect(clip.Window, clip.Core.Intersect(clip.Window))

	defects = append(defects, s.checkBridges(clip, printed, corePx, corner)...)
	defects = append(defects, s.checkWidths(clip, printed, corePx, corner)...)
	defects = append(defects, s.checkEPE(clip, target, printed, corePx, corner)...)
	return defects
}

// labelComponents labels 4-connected components of set pixels. Label 0
// means background; labels start at 1. Returns the label grid and count.
func labelComponents(m *raster.Mask) ([]int32, int) {
	labels := make([]int32, len(m.Pix))
	var next int32
	queue := make([]int, 0, 256)
	for start, v := range m.Pix {
		if v == 0 || labels[start] != 0 {
			continue
		}
		next++
		labels[start] = next
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			idx := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			x, y := idx%m.W, idx/m.W
			for _, n := range [4][2]int{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}} {
				nx, ny := n[0], n[1]
				if nx < 0 || ny < 0 || nx >= m.W || ny >= m.H {
					continue
				}
				ni := ny*m.W + nx
				if m.Pix[ni] != 0 && labels[ni] == 0 {
					labels[ni] = next
					queue = append(queue, ni)
				}
			}
		}
	}
	return labels, int(next)
}

// bridgeReachNM is how close a stray printed pixel must be to each of two
// drawn nets to count as bridge material between them. It must exceed half
// the widest bridgeable gap (~96 nm at this sigma) and stay below the
// minimum safe drawn spacing.
const bridgeReachNM = 48

// checkBridges flags printed material in the core that lies in the gap
// between two electrically distinct drawn nets: resist connecting
// drawn-apart geometry is a short-circuit risk.
//
// Nets are the connected groups of drawn shapes (touching or overlapping
// rectangles belong to one net, e.g. the arms of a decomposed polygon).
// A printed pixel outside every (dilated) drawn shape that sits within
// bridgeReachNM of two different nets is bridge evidence.
func (s *Simulator) checkBridges(clip layout.Clip, printed *raster.Mask, corePx geom.Rect, corner string) []Defect {
	if len(clip.Shapes) < 2 {
		return nil
	}
	nets := drawnNets(clip.Shapes)

	// Mask of pixels inside any dilated drawn shape.
	inShape := raster.NewMask(printed.W, printed.H)
	for _, r := range clip.Shapes {
		pr := s.pxRect(clip.Window, r).Expand(1)
		for y := max(pr.Min.Y, 0); y < min(pr.Max.Y, printed.H); y++ {
			for x := max(pr.Min.X, 0); x < min(pr.Max.X, printed.W); x++ {
				inShape.Pix[y*printed.W+x] = 1
			}
		}
	}

	var defects []Defect
	reported := make(map[[2]int]bool) // unordered net pair, smaller first
	for y := max(corePx.Min.Y, 0); y < min(corePx.Max.Y, printed.H); y++ {
		for x := max(corePx.Min.X, 0); x < min(corePx.Max.X, printed.W); x++ {
			i := y*printed.W + x
			if printed.Pix[i] == 0 || inShape.Pix[i] != 0 {
				continue
			}
			at := s.toLayoutPt(clip.Window, x, y)
			// Nets within reach of this stray pixel.
			var near []int
			for si, r := range clip.Shapes {
				if pointRectDistSq(at, r) <= bridgeReachNM*bridgeReachNM {
					net := nets[si]
					dup := false
					for _, n := range near {
						if n == net {
							dup = true
							break
						}
					}
					if !dup {
						near = append(near, net)
					}
				}
			}
			for a := 0; a < len(near); a++ {
				for b := a + 1; b < len(near); b++ {
					key := [2]int{min(near[a], near[b]), max(near[a], near[b])}
					if !reported[key] {
						reported[key] = true
						defects = append(defects, Defect{Type: DefectBridge, Corner: corner, At: at})
					}
				}
			}
		}
	}
	return defects
}

// drawnNets assigns a net id to every shape via union-find: shapes that
// touch or overlap share a net.
func drawnNets(shapes []geom.Rect) []int {
	parent := make([]int, len(shapes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for i := 0; i < len(shapes); i++ {
		for j := i + 1; j < len(shapes); j++ {
			if shapes[i].DistanceSq(shapes[j]) == 0 {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	nets := make([]int, len(shapes))
	for i := range shapes {
		nets[i] = find(i)
	}
	return nets
}

// pointRectDistSq is the squared distance from point p to rectangle r.
func pointRectDistSq(p geom.Point, r geom.Rect) int64 {
	dx, dy := 0, 0
	switch {
	case p.X < r.Min.X:
		dx = r.Min.X - p.X
	case p.X >= r.Max.X:
		dx = p.X - r.Max.X + 1
	}
	switch {
	case p.Y < r.Min.Y:
		dy = r.Min.Y - p.Y
	case p.Y >= r.Max.Y:
		dy = p.Y - r.Max.Y + 1
	}
	return int64(dx)*int64(dx) + int64(dy)*int64(dy)
}

// checkWidths flags necking (printed width below NeckFrac of drawn) and
// opens (feature fails to print) at sampled cross-sections inside the core.
func (s *Simulator) checkWidths(clip layout.Clip, printed *raster.Mask, corePx geom.Rect, corner string) []Defect {
	var defects []Defect
	for _, r := range clip.Shapes {
		drawnW := min(r.Dx(), r.Dy())
		if drawnW < s.cfg.MinCheckWidthNM {
			continue
		}
		region := r.Intersect(clip.Core)
		if region.Empty() {
			continue
		}
		pr := s.pxRect(clip.Window, region).Intersect(geom.R(0, 0, printed.W, printed.H))
		if pr.Empty() {
			continue
		}
		horizontal := r.Dx() >= r.Dy() // long axis is x
		openHere := true
		neckAt := geom.Point{}
		neck := false
		for _, frac := range [3]float64{0.25, 0.5, 0.75} {
			var cx, cy int
			if horizontal {
				cx = pr.Min.X + int(frac*float64(pr.Dx()-1))
				cy = (pr.Min.Y + pr.Max.Y - 1) / 2
			} else {
				cy = pr.Min.Y + int(frac*float64(pr.Dy()-1))
				cx = (pr.Min.X + pr.Max.X - 1) / 2
			}
			w := runWidth(printed, cx, cy, !horizontal)
			if w > 0 {
				openHere = false
			}
			printedNM := float64(w * s.cfg.PixelNM)
			if w > 0 && printedNM < s.cfg.NeckFrac*float64(drawnW) {
				neck = true
				neckAt = s.toLayoutPt(clip.Window, cx, cy)
			}
		}
		switch {
		case openHere:
			defects = append(defects, Defect{
				Type: DefectOpen, Corner: corner,
				At: region.Center(),
			})
		case neck:
			defects = append(defects, Defect{Type: DefectNeck, Corner: corner, At: neckAt})
		}
	}
	return defects
}

// runWidth measures the contiguous printed run through (x, y) along the
// given axis (vertical=true measures along y). Returns 0 when (x, y) is
// not printed.
func runWidth(m *raster.Mask, x, y int, vertical bool) int {
	if m.At(x, y) == 0 {
		return 0
	}
	n := 1
	if vertical {
		for d := 1; m.At(x, y-d) != 0; d++ {
			n++
		}
		for d := 1; m.At(x, y+d) != 0; d++ {
			n++
		}
	} else {
		for d := 1; m.At(x-d, y) != 0; d++ {
			n++
		}
		for d := 1; m.At(x+d, y) != 0; d++ {
			n++
		}
	}
	return n
}

// checkEPE samples drawn edges inside the core and flags edge-placement
// deviations beyond EPETolNM. Catches line-end pullback and corner
// rounding that the width checks miss.
func (s *Simulator) checkEPE(clip layout.Clip, target, printed *raster.Mask, corePx geom.Rect, corner string) []Defect {
	tolPx := float64(s.cfg.EPETolNM) / float64(s.cfg.PixelNM)
	maxT := int(2*tolPx) + 2
	var defects []Defect
	p := s.cfg.PixelNM
	for ri, r := range clip.Shapes {
		if min(r.Dx(), r.Dy()) < s.cfg.MinCheckWidthNM {
			continue
		}
		pr := s.pxRect(clip.Window, r)
		// Edge descriptors: position of the boundary pixel line just inside
		// the shape, plus the outward step direction.
		type edge struct {
			x0, y0, x1, y1 int // inclusive pixel span just inside the edge
			dx, dy         int // outward normal step
		}
		edges := [4]edge{
			{pr.Min.X, pr.Min.Y, pr.Min.X, pr.Max.Y - 1, -1, 0},        // left
			{pr.Max.X - 1, pr.Min.Y, pr.Max.X - 1, pr.Max.Y - 1, 1, 0}, // right
			{pr.Min.X, pr.Min.Y, pr.Max.X - 1, pr.Min.Y, 0, -1},        // bottom
			{pr.Min.X, pr.Max.Y - 1, pr.Max.X - 1, pr.Max.Y - 1, 0, 1}, // top
		}
		for _, e := range edges {
			stepX, stepY := 0, 1
			n := e.y1 - e.y0 + 1
			if e.dy != 0 { // horizontal edge: walk x
				stepX, stepY = 1, 0
				n = e.x1 - e.x0 + 1
			}
			// Sample every 3 px along the edge, staying >= 3 px away from
			// the edge endpoints: corner rounding is expected behaviour,
			// not an EPE violation. Short edges (line tips) are sampled at
			// their centre only, which measures line-end pullback.
			var samples []int
			for k := 3; k <= n-4; k += 3 {
				samples = append(samples, k)
			}
			if len(samples) == 0 {
				samples = append(samples, n/2)
			}
			for _, k := range samples {
				x := e.x0 + k*stepX
				y := e.y0 + k*stepY
				if !geom.Pt(x, y).In(corePx) {
					continue
				}
				// Skip samples whose outward neighbour is itself drawn:
				// the "edge" is interior to a decomposed polygon or an
				// abutting shape, not a printable boundary.
				if target.At(x+e.dx, y+e.dy) != 0 {
					continue
				}
				dev, found := edgeDeviation(printed, x, y, e.dx, e.dy, maxT)
				if found && float64(dev)*float64(p) <= float64(s.cfg.EPETolNM) {
					continue
				}
				// Suppress samples dominated by proximity to another
				// drawn shape (junction fill, tight-space interaction):
				// the bridge and width checks own those regions.
				at := s.toLayoutPt(clip.Window, x, y)
				nearOther := false
				for si, o := range clip.Shapes {
					if si != ri && pointRectDistSq(at, o) <= bridgeReachNM*bridgeReachNM {
						nearOther = true
						break
					}
				}
				if nearOther {
					continue
				}
				defects = append(defects, Defect{Type: DefectEPE, Corner: corner, At: at})
				break // one report per edge is enough
			}
		}
	}
	return defects
}

// edgeDeviation walks from the in-shape boundary pixel (x, y) along the
// outward normal (dx, dy) and inward, locating the printed edge. It returns
// the absolute deviation in pixels and whether an edge was found within
// maxT steps.
func edgeDeviation(m *raster.Mask, x, y, dx, dy, maxT int) (int, bool) {
	inside := m.At(x, y) != 0
	if inside {
		// Walk outward until the print stops.
		for t := 1; t <= maxT; t++ {
			if m.At(x+t*dx, y+t*dy) == 0 {
				return t - 1, true
			}
		}
		return maxT, false // printed far beyond drawn edge
	}
	// Boundary pixel not printed: walk inward until print starts.
	for t := 1; t <= maxT; t++ {
		if m.At(x-t*dx, y-t*dy) != 0 {
			return t, true
		}
	}
	return maxT, false // nothing printed near the edge
}

func (s *Simulator) toLayoutPt(window geom.Rect, px, py int) geom.Point {
	return geom.Pt(
		window.Min.X+px*s.cfg.PixelNM+s.cfg.PixelNM/2,
		window.Min.Y+py*s.cfg.PixelNM+s.cfg.PixelNM/2,
	)
}
