// Package lithosim implements a compact optical lithography simulator used
// as the ground-truth oracle for hotspot labelling and as the verification
// cost model behind the ODST metric.
//
// # Model
//
// The mask (a rasterized layout clip) is imaged through a coherent
// approximation of a Hopkins partially-coherent system: the aerial image is
// the mask convolved with a Gaussian point-spread function whose width
// sigma ~ k1 * lambda / NA. A constant-threshold resist model turns the
// aerial image into the printed pattern. Process variation is modelled by
// corners: defocus widens the PSF, dose shifts the resist threshold.
//
// # Defects
//
// A clip is a hotspot when any process corner produces, inside the clip's
// core region, one of:
//
//   - bridge: printed material connects two layout shapes that are drawn
//     apart;
//   - neck (pinch): a printed feature is thinner than a fraction of its
//     drawn width;
//   - open: a drawn feature fails to print;
//   - EPE: the printed edge deviates from the drawn edge by more than the
//     edge-placement tolerance.
//
// This captures the physics that makes hotspot detection learnable: failures
// are local, diffraction-driven, and correlated with drawn geometry.
package lithosim

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/raster"
)

// DefectType enumerates printing failure categories.
type DefectType int

// Defect categories, in increasing order of severity for reporting only.
const (
	DefectBridge DefectType = iota + 1
	DefectNeck
	DefectOpen
	DefectEPE
)

// String returns the lower-case defect name.
func (d DefectType) String() string {
	switch d {
	case DefectBridge:
		return "bridge"
	case DefectNeck:
		return "neck"
	case DefectOpen:
		return "open"
	case DefectEPE:
		return "epe"
	default:
		return fmt.Sprintf("defect(%d)", int(d))
	}
}

// Corner is one process condition.
type Corner struct {
	// Name identifies the corner in reports.
	Name string
	// SigmaScale multiplies the nominal PSF sigma (defocus model).
	SigmaScale float64
	// ThresholdScale multiplies the nominal resist threshold (dose model).
	ThresholdScale float64
}

// Defect is a single printing failure found at a process corner.
type Defect struct {
	Type   DefectType
	Corner string
	// At is the approximate defect location in layout coordinates.
	At geom.Point
}

// Result is the oracle's verdict for one clip.
type Result struct {
	Hotspot bool
	Defects []Defect
	// PVBandArea is the process-variation band area in square nanometres:
	// pixels printed at some but not all corners. A stability measure.
	PVBandArea float64
}

// Config parameterizes the simulator. Use DefaultConfig as a base.
type Config struct {
	// PixelNM is the simulation raster pitch in nanometres.
	PixelNM int
	// WavelengthNM and NA set the optical resolution; SigmaNM overrides
	// the derived PSF width when positive.
	WavelengthNM float64
	NA           float64
	// K1 is the process difficulty factor in sigma = K1 * lambda / NA.
	K1 float64
	// SigmaNM, when > 0, is the PSF standard deviation directly.
	SigmaNM float64
	// Threshold is the nominal resist threshold on the aerial image
	// (mask values are in [0, 1]).
	Threshold float64
	// Corners are the process conditions checked; a defect at any corner
	// makes the clip a hotspot. Empty means nominal only.
	Corners []Corner
	// NeckFrac: printed width below NeckFrac * drawn width is a neck.
	NeckFrac float64
	// EPETolNM is the edge-placement-error tolerance in nanometres.
	EPETolNM float64
	// MinCheckWidthNM: drawn features narrower than this are skipped by
	// the neck check (sub-resolution assist features would false-fire).
	MinCheckWidthNM int
	// CornerWorkers bounds the goroutines SimulateCtx uses to evaluate
	// process corners concurrently. 0 picks min(NumCPU, len(Corners));
	// 1 forces the serial path. The verdict, defect list, and PV-band
	// area are identical for every setting.
	CornerWorkers int
}

// DefaultConfig models an aggressive ArF immersion process (193 nm, NA
// 1.35) at a ~32 nm-class metal layer with a 1024 nm clip window.
func DefaultConfig() Config {
	return Config{
		PixelNM:      8,
		WavelengthNM: 193,
		NA:           1.35,
		K1:           0.21,
		Threshold:    0.5,
		Corners: []Corner{
			{Name: "nominal", SigmaScale: 1, ThresholdScale: 1},
			{Name: "defocus", SigmaScale: 1.25, ThresholdScale: 1},
			{Name: "dose+", SigmaScale: 1, ThresholdScale: 0.93},
			{Name: "dose-", SigmaScale: 1, ThresholdScale: 1.07},
		},
		NeckFrac:        0.65,
		EPETolNM:        28,
		MinCheckWidthNM: 40,
	}
}

// Sigma returns the effective PSF standard deviation in nanometres.
func (c Config) Sigma() float64 {
	if c.SigmaNM > 0 {
		return c.SigmaNM
	}
	return c.K1 * c.WavelengthNM / c.NA
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.PixelNM <= 0 {
		return fmt.Errorf("lithosim: PixelNM must be positive, got %d", c.PixelNM)
	}
	if c.Sigma() <= 0 {
		return fmt.Errorf("lithosim: nonpositive sigma %v", c.Sigma())
	}
	if c.Threshold <= 0 || c.Threshold >= 1 {
		return fmt.Errorf("lithosim: threshold must be in (0,1), got %v", c.Threshold)
	}
	if c.NeckFrac <= 0 || c.NeckFrac >= 1 {
		return fmt.Errorf("lithosim: NeckFrac must be in (0,1), got %v", c.NeckFrac)
	}
	for _, k := range c.Corners {
		if k.SigmaScale <= 0 || k.ThresholdScale <= 0 {
			return fmt.Errorf("lithosim: corner %q has nonpositive scales", k.Name)
		}
	}
	if c.CornerWorkers < 0 {
		return fmt.Errorf("lithosim: CornerWorkers must be >= 0, got %d", c.CornerWorkers)
	}
	return nil
}

// Simulator runs the optical model. It caches Gaussian kernels per corner
// and is safe for concurrent use after construction.
type Simulator struct {
	cfg Config
	// kernels[i] is the 1-D separable blur kernel for cfg.Corners[i]
	// (or the nominal kernel at index 0 when Corners is empty).
	kernels [][]float64

	// Cumulative oracle usage, updated atomically by Simulate: the
	// measured ODST contribution of this simulator instance.
	simCount atomic.Int64
	simNanos atomic.Int64
}

// SimStats is the cumulative oracle usage of a Simulator: how many full
// process-window simulations ran and how much wall-clock time they took.
// Elapsed is the measured ODST verification term of the paper's metric.
type SimStats struct {
	Simulations int64
	Elapsed     time.Duration
}

// Stats returns the cumulative usage since construction or the last
// ResetStats. Safe for concurrent use with Simulate.
func (s *Simulator) Stats() SimStats {
	return SimStats{
		Simulations: s.simCount.Load(),
		Elapsed:     time.Duration(s.simNanos.Load()),
	}
}

// ResetStats zeroes the usage counters, e.g. between benchmark runs.
func (s *Simulator) ResetStats() {
	s.simCount.Store(0)
	s.simNanos.Store(0)
}

// New constructs a Simulator, validating the configuration.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Corners) == 0 {
		cfg.Corners = []Corner{{Name: "nominal", SigmaScale: 1, ThresholdScale: 1}}
	}
	s := &Simulator{cfg: cfg}
	s.kernels = make([][]float64, len(cfg.Corners))
	for i, k := range cfg.Corners {
		s.kernels[i] = gauss1D(cfg.Sigma() * k.SigmaScale / float64(cfg.PixelNM))
	}
	return s, nil
}

// Config returns the simulator's (normalized) configuration.
func (s *Simulator) Config() Config { return s.cfg }

// gauss1D builds a normalized 1-D Gaussian kernel with radius 3*sigmaPx.
func gauss1D(sigmaPx float64) []float64 {
	r := int(math.Ceil(3 * sigmaPx))
	if r < 1 {
		r = 1
	}
	k := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigmaPx * sigmaPx))
		k[i+r] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// blurSeparable convolves im with the separable kernel k (zero padding).
func blurSeparable(im *raster.Image, k []float64) *raster.Image {
	r := (len(k) - 1) / 2
	tmp := raster.NewImage(im.W, im.H)
	// Horizontal pass.
	for y := 0; y < im.H; y++ {
		row := y * im.W
		for x := 0; x < im.W; x++ {
			var s float64
			lo, hi := -r, r
			if x+lo < 0 {
				lo = -x
			}
			if x+hi >= im.W {
				hi = im.W - 1 - x
			}
			for d := lo; d <= hi; d++ {
				s += im.Pix[row+x+d] * k[d+r]
			}
			tmp.Pix[row+x] = s
		}
	}
	out := raster.NewImage(im.W, im.H)
	// Vertical pass.
	for y := 0; y < im.H; y++ {
		lo, hi := -r, r
		if y+lo < 0 {
			lo = -y
		}
		if y+hi >= im.H {
			hi = im.H - 1 - y
		}
		for x := 0; x < im.W; x++ {
			var s float64
			for d := lo; d <= hi; d++ {
				s += tmp.Pix[(y+d)*im.W+x] * k[d+r]
			}
			out.Pix[y*im.W+x] = s
		}
	}
	return out
}

// AerialImage computes the nominal aerial image of a mask raster.
func (s *Simulator) AerialImage(mask *raster.Image) *raster.Image {
	return blurSeparable(mask, s.kernels[0])
}

// AerialImageAt computes the aerial image at corner index i.
func (s *Simulator) AerialImageAt(mask *raster.Image, i int) (*raster.Image, error) {
	if i < 0 || i >= len(s.kernels) {
		return nil, fmt.Errorf("lithosim: corner index %d out of range [0,%d)", i, len(s.kernels))
	}
	return blurSeparable(mask, s.kernels[i]), nil
}

// Print returns the printed resist pattern of a mask raster at corner i.
func (s *Simulator) Print(mask *raster.Image, i int) (*raster.Mask, error) {
	aer, err := s.AerialImageAt(mask, i)
	if err != nil {
		return nil, err
	}
	return aer.Threshold(s.cfg.Threshold * s.cfg.Corners[i].ThresholdScale), nil
}
