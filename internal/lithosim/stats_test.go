package lithosim

import (
	"sync"
	"testing"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

func statsClip(t *testing.T) layout.Clip {
	t.Helper()
	l := layout.New("c")
	if err := l.AddRect(geom.R(200, 450, 800, 560)); err != nil {
		t.Fatal(err)
	}
	clip, err := l.ClipAt(geom.Pt(512, 512), 1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return clip
}

// TestStatsMeasuredODST checks that Simulate accumulates count and
// elapsed time (the measured ODST), that trivial clips cost nothing, and
// that concurrent simulation keeps the counters exact under -race.
func TestStatsMeasuredODST(t *testing.T) {
	sim, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clip := statsClip(t)

	if _, err := sim.Simulate(clip); err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	if st.Simulations != 1 || st.Elapsed <= 0 {
		t.Fatalf("stats after one sim = %+v", st)
	}

	// Empty-shape clips return trivially and must not count.
	empty := clip
	empty.Shapes = nil
	if _, err := sim.Simulate(empty); err != nil {
		t.Fatal(err)
	}
	if got := sim.Stats().Simulations; got != 1 {
		t.Fatalf("trivial clip counted: %d sims", got)
	}

	const workers, per = 4, 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := sim.Simulate(clip); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	st = sim.Stats()
	if st.Simulations != 1+workers*per {
		t.Fatalf("concurrent sims = %d, want %d", st.Simulations, 1+workers*per)
	}

	sim.ResetStats()
	if st := sim.Stats(); st.Simulations != 0 || st.Elapsed != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}
