package lithosim

import (
	"math"
	"testing"

	"github.com/golitho/hsd/internal/fft"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/raster"
)

// makeClip builds a 1024 nm clip (core fraction 0.5) centred at (512, 512)
// over the given shapes.
func makeClip(t *testing.T, shapes ...geom.Rect) layout.Clip {
	t.Helper()
	l := layout.New("test")
	for _, r := range shapes {
		if err := l.AddRect(r); err != nil {
			t.Fatalf("AddRect(%v): %v", r, err)
		}
	}
	clip, err := l.ClipAt(geom.Pt(512, 512), 1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return clip
}

func newSim(t *testing.T) *Simulator {
	t.Helper()
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig()

	c := base
	c.PixelNM = 0
	if _, err := New(c); err == nil {
		t.Error("zero PixelNM accepted")
	}
	c = base
	c.Threshold = 1.5
	if _, err := New(c); err == nil {
		t.Error("threshold > 1 accepted")
	}
	c = base
	c.NeckFrac = 0
	if _, err := New(c); err == nil {
		t.Error("zero NeckFrac accepted")
	}
	c = base
	c.Corners = []Corner{{Name: "bad", SigmaScale: 0, ThresholdScale: 1}}
	if _, err := New(c); err == nil {
		t.Error("zero SigmaScale accepted")
	}
	c = base
	c.K1 = 0
	c.SigmaNM = 0
	if _, err := New(c); err == nil {
		t.Error("zero sigma accepted")
	}
}

func TestSigmaDerivation(t *testing.T) {
	c := DefaultConfig()
	want := c.K1 * c.WavelengthNM / c.NA
	if math.Abs(c.Sigma()-want) > 1e-12 {
		t.Fatalf("Sigma = %v, want %v", c.Sigma(), want)
	}
	c.SigmaNM = 25
	if c.Sigma() != 25 {
		t.Fatalf("SigmaNM override ignored: %v", c.Sigma())
	}
}

func TestDefectTypeString(t *testing.T) {
	for d, want := range map[DefectType]string{
		DefectBridge: "bridge", DefectNeck: "neck",
		DefectOpen: "open", DefectEPE: "epe", DefectType(99): "defect(99)",
	} {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(d), got, want)
		}
	}
}

// TestBlurMatchesFFTConvolution cross-validates the separable spatial blur
// against the FFT convolution path for the interior of the image (both use
// zero padding, so they agree everywhere).
func TestBlurMatchesFFTConvolution(t *testing.T) {
	s := newSim(t)
	im := raster.NewImage(64, 64)
	for y := 20; y < 44; y++ {
		for x := 10; x < 30; x++ {
			im.Set(x, y, 1)
		}
	}
	got := s.AerialImage(im)

	k1 := s.kernels[0]
	n := len(k1)
	k2 := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			k2[i*n+j] = k1[i] * k1[j]
		}
	}
	want, err := fft.ConvolveSame(im.Pix, im.W, im.H, k2, n, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got.Pix[i]-want[i]) > 1e-9 {
			t.Fatalf("blur differs from FFT conv at %d: %v vs %v", i, got.Pix[i], want[i])
		}
	}
}

func TestGaussKernelNormalized(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 3.75, 10} {
		k := gauss1D(sigma)
		var sum float64
		for _, v := range k {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("sigma %v: kernel sum = %v", sigma, sum)
		}
		if len(k)%2 != 1 {
			t.Errorf("sigma %v: kernel length %d is even", sigma, len(k))
		}
		for i := 0; i < len(k)/2; i++ {
			if math.Abs(k[i]-k[len(k)-1-i]) > 1e-12 {
				t.Errorf("sigma %v: kernel asymmetric", sigma)
			}
		}
	}
}

func TestAerialImageWideFeature(t *testing.T) {
	s := newSim(t)
	// A very wide feature: centre intensity ~1, far field ~0, edge ~0.5.
	im := raster.NewImage(128, 128)
	for y := 32; y < 96; y++ {
		for x := 0; x < 128; x++ {
			im.Set(x, y, 1)
		}
	}
	aer := s.AerialImage(im)
	if got := aer.At(64, 64); got < 0.99 {
		t.Errorf("interior intensity = %v, want ~1", got)
	}
	if got := aer.At(64, 5); got > 0.01 {
		t.Errorf("far-field intensity = %v, want ~0", got)
	}
	// The drawn edge is at y=32 boundary; pixel row 32 centre is half a
	// pixel inside, so intensity is slightly above 0.5.
	edge := aer.At(64, 32)
	if edge < 0.5 || edge > 0.6 {
		t.Errorf("edge intensity = %v, want in [0.5, 0.6]", edge)
	}
}

func TestSimulateEmptyClip(t *testing.T) {
	s := newSim(t)
	if _, err := s.Simulate(layout.Clip{}); err == nil {
		t.Fatal("empty window accepted")
	}
	res, err := s.Simulate(layout.Clip{Window: geom.R(0, 0, 1024, 1024), Core: geom.R(256, 256, 768, 768)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hotspot {
		t.Fatal("clip with no shapes labelled hotspot")
	}
}

func TestSimulateSafeWideLine(t *testing.T) {
	s := newSim(t)
	clip := makeClip(t, geom.R(0, 462, 1024, 562)) // 100 nm line through core
	res, err := s.Simulate(clip)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hotspot {
		t.Fatalf("wide line flagged hotspot: %v", res.Defects)
	}
}

func TestSimulateNarrowLineOpens(t *testing.T) {
	s := newSim(t)
	clip := makeClip(t, geom.R(0, 492, 1024, 532)) // 40 nm line: below resolution
	res, err := s.Simulate(clip)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hotspot {
		t.Fatal("sub-resolution line not flagged")
	}
	if !hasDefect(res, DefectOpen) && !hasDefect(res, DefectNeck) {
		t.Fatalf("want open/neck defect, got %v", res.Defects)
	}
}

func TestSimulateTightSpaceBridges(t *testing.T) {
	s := newSim(t)
	clip := makeClip(t,
		geom.R(0, 400, 1024, 500),
		geom.R(0, 536, 1024, 636), // 36 nm space
	)
	res, err := s.Simulate(clip)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hotspot {
		t.Fatal("36 nm space not flagged")
	}
	if !hasDefect(res, DefectBridge) {
		t.Fatalf("want bridge defect, got %v", res.Defects)
	}
}

func TestSimulateSafeSpace(t *testing.T) {
	s := newSim(t)
	clip := makeClip(t,
		geom.R(0, 380, 1024, 480),
		geom.R(0, 600, 1024, 700), // 120 nm space
	)
	res, err := s.Simulate(clip)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hotspot {
		t.Fatalf("120 nm space flagged hotspot: %v", res.Defects)
	}
}

func TestSimulateDefectOutsideCoreIgnored(t *testing.T) {
	s := newSim(t)
	// A sub-resolution line near the window edge, entirely outside the
	// 512 nm core (y in [256, 768)).
	clip := makeClip(t, geom.R(0, 880, 1024, 920))
	res, err := s.Simulate(clip)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hotspot {
		t.Fatalf("defect outside core scored: %v", res.Defects)
	}
}

func TestSimulateLineEndPullback(t *testing.T) {
	s := newSim(t)
	// A 60 nm line ending in the middle of the core: line-end pullback at
	// defocus exceeds the EPE tolerance.
	clip := makeClip(t, geom.R(0, 482, 512, 542))
	res, err := s.Simulate(clip)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hotspot {
		t.Fatal("narrow line end in core not flagged")
	}
}

func TestSimulateWideLineEndSafe(t *testing.T) {
	s := newSim(t)
	// A 120 nm line ending in the core: pullback is within tolerance.
	clip := makeClip(t, geom.R(0, 452, 512, 572))
	res, err := s.Simulate(clip)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hotspot {
		t.Fatalf("wide line end flagged hotspot: %v", res.Defects)
	}
}

func TestSimulateLShapeSafe(t *testing.T) {
	s := newSim(t)
	// A fat L through the core, built from two abutting rects. The shared
	// internal edge must not trigger EPE or bridge checks.
	clip := makeClip(t,
		geom.R(300, 400, 700, 520),
		geom.R(580, 520, 700, 900),
	)
	res, err := s.Simulate(clip)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hotspot {
		t.Fatalf("safe L-shape flagged: %v", res.Defects)
	}
}

func TestPVBandMonotonicity(t *testing.T) {
	s := newSim(t)
	wide := makeClip(t, geom.R(0, 412, 1024, 612))   // 200 nm line
	narrow := makeClip(t, geom.R(0, 484, 1024, 540)) // 56 nm line
	rw, err := s.Simulate(wide)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := s.Simulate(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if rw.PVBandArea < 0 || rn.PVBandArea < 0 {
		t.Fatal("negative PV band")
	}
	if rn.PVBandArea <= rw.PVBandArea {
		t.Fatalf("narrow-line PV band (%v) should exceed wide-line PV band (%v)",
			rn.PVBandArea, rw.PVBandArea)
	}
}

func TestLabelComponents(t *testing.T) {
	m := raster.NewMask(5, 3)
	// Two components: left 2x2 block and right column.
	for _, p := range [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {4, 0}, {4, 1}, {4, 2}} {
		m.Set(p[0], p[1], 1)
	}
	labels, n := labelComponents(m)
	if n != 2 {
		t.Fatalf("components = %d, want 2", n)
	}
	if labels[0] == 0 || labels[4] == 0 {
		t.Fatal("set pixels unlabelled")
	}
	if labels[0] == labels[4] {
		t.Fatal("distinct components share a label")
	}
	if labels[0] != labels[1*5+1] {
		t.Fatal("connected pixels have different labels")
	}
	if labels[2] != 0 {
		t.Fatal("background pixel labelled")
	}
}

func TestLabelComponentsDiagonalNotConnected(t *testing.T) {
	m := raster.NewMask(2, 2)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1)
	_, n := labelComponents(m)
	if n != 2 {
		t.Fatalf("diagonal pixels merged: %d components", n)
	}
}

func TestRunWidth(t *testing.T) {
	m := raster.NewMask(10, 10)
	for x := 2; x < 8; x++ {
		m.Set(x, 5, 1)
	}
	if w := runWidth(m, 5, 5, false); w != 6 {
		t.Fatalf("horizontal run = %d, want 6", w)
	}
	if w := runWidth(m, 5, 5, true); w != 1 {
		t.Fatalf("vertical run = %d, want 1", w)
	}
	if w := runWidth(m, 0, 0, false); w != 0 {
		t.Fatalf("empty run = %d, want 0", w)
	}
}

func TestPrintAndAerialCornerIndex(t *testing.T) {
	s := newSim(t)
	im := raster.NewImage(32, 32)
	if _, err := s.AerialImageAt(im, -1); err == nil {
		t.Fatal("negative corner accepted")
	}
	if _, err := s.AerialImageAt(im, len(s.cfg.Corners)); err == nil {
		t.Fatal("out-of-range corner accepted")
	}
	if _, err := s.Print(im, 0); err != nil {
		t.Fatal(err)
	}
}

func hasDefect(r Result, d DefectType) bool {
	for _, def := range r.Defects {
		if def.Type == d {
			return true
		}
	}
	return false
}
