package lithosim

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func newSimWorkers(t *testing.T, workers int) *Simulator {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CornerWorkers = workers
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSimulateParallelEquivalence: the concurrent corner path returns a
// Result deeply equal to the serial path — same defects in the same
// order, same PV-band area — across randomized clips and worker counts.
func TestSimulateParallelEquivalence(t *testing.T) {
	serial := newSimWorkers(t, 1)
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 12; trial++ {
		clip := randomTestClip(t, rng)
		want, err := serial.Simulate(clip)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 3, 4, 16} {
			par := newSimWorkers(t, workers)
			got, err := par.Simulate(clip)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d workers=%d: parallel result diverged\n got %+v\nwant %+v",
					trial, workers, got, want)
			}
		}
	}
}

// TestSimulateParallelConcurrentUse: one parallel-mode simulator shared
// by many goroutines (the outer concurrency the dataset generator uses)
// must stay correct under -race.
func TestSimulateParallelConcurrentUse(t *testing.T) {
	s := newSimWorkers(t, 4)
	rng := rand.New(rand.NewSource(52))
	clips := make([]int, 8)
	clip := randomTestClip(t, rng)
	want, err := s.Simulate(clip)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(clips))
	for i := range clips {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Simulate(clip)
			if err != nil {
				errs[i] = err
				return
			}
			if !reflect.DeepEqual(res, want) {
				errs[i] = errMismatch
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}

// TestSimulateCtxCancelledParallel: a pre-cancelled context interrupts
// both modes with the same wrapped error and no partial results.
func TestSimulateCtxCancelledParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	clip := randomTestClip(t, rng)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		s := newSimWorkers(t, workers)
		res, err := s.SimulateCtx(ctx, clip)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if !strings.Contains(err.Error(), "interrupted at corner") {
			t.Fatalf("workers=%d: error %q lacks corner context", workers, err)
		}
		if res.Hotspot || res.Defects != nil || res.PVBandArea != 0 {
			t.Fatalf("workers=%d: partial result returned: %+v", workers, res)
		}
	}
}

// TestCornerWorkersValidation: negative worker counts are a config error.
func TestCornerWorkersValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CornerWorkers = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative CornerWorkers accepted")
	}
}
