// Package raster converts rectilinear layout geometry into pixel images.
//
// The lithography simulator and all image-based feature extractors consume
// the area-accurate grayscale Image produced here; classifiers that want a
// binary view threshold it into a Mask. Pixels are square with an edge
// length of an integer number of database units (nanometres).
package raster

import (
	"fmt"
	"math"

	"github.com/golitho/hsd/internal/geom"
)

// Image is a dense grayscale raster with values in [0, 1] representing the
// fraction of each pixel covered by layout shapes. Pixel (x, y) maps to
// index y*W + x; y grows upward together with layout coordinates.
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage returns a zeroed W x H image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the pixel value at (x, y). Out-of-range coordinates return 0.
func (im *Image) At(x, y int) float64 {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return 0
	}
	return im.Pix[y*im.W+x]
}

// Set assigns the pixel at (x, y); out-of-range coordinates are ignored.
func (im *Image) Set(x, y int, v float64) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// Clone returns a deep copy of im.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, Pix: make([]float64, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// Sum returns the total of all pixel values (the covered area in pixels).
func (im *Image) Sum() float64 {
	var s float64
	for _, v := range im.Pix {
		s += v
	}
	return s
}

// Threshold returns the binary mask of pixels with value >= t.
func (im *Image) Threshold(t float64) *Mask {
	m := NewMask(im.W, im.H)
	for i, v := range im.Pix {
		if v >= t {
			m.Pix[i] = 1
		}
	}
	return m
}

// MirrorX returns im reflected horizontally (left-right flip).
func (im *Image) MirrorX() *Image {
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		row := y * im.W
		for x := 0; x < im.W; x++ {
			out.Pix[row+x] = im.Pix[row+im.W-1-x]
		}
	}
	return out
}

// MirrorY returns im reflected vertically (top-bottom flip).
func (im *Image) MirrorY() *Image {
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		copy(out.Pix[y*im.W:(y+1)*im.W], im.Pix[(im.H-1-y)*im.W:(im.H-y)*im.W])
	}
	return out
}

// Rotate90 returns im rotated 90 degrees counter-clockwise. The result has
// swapped dimensions.
func (im *Image) Rotate90() *Image {
	out := NewImage(im.H, im.W)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			// (x, y) -> (y, W-1-x) in the rotated frame.
			out.Pix[(im.W-1-x)*out.W+y] = im.Pix[y*im.W+x]
		}
	}
	return out
}

// Mask is a dense binary raster; Pix values are 0 or 1.
type Mask struct {
	W, H int
	Pix  []uint8
}

// NewMask returns a zeroed W x H mask.
func NewMask(w, h int) *Mask {
	return &Mask{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the bit at (x, y); out-of-range coordinates return 0.
func (m *Mask) At(x, y int) uint8 {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return 0
	}
	return m.Pix[y*m.W+x]
}

// Set assigns the bit at (x, y); out-of-range coordinates are ignored.
func (m *Mask) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return
	}
	m.Pix[y*m.W+x] = v
}

// Count returns the number of set bits.
func (m *Mask) Count() int {
	n := 0
	for _, v := range m.Pix {
		if v != 0 {
			n++
		}
	}
	return n
}

// Hamming returns the number of positions where m and o differ. Masks of
// different dimensions have infinite distance, reported as m.W*m.H + o.W*o.H.
func (m *Mask) Hamming(o *Mask) int {
	if m.W != o.W || m.H != o.H {
		return m.W*m.H + o.W*o.H
	}
	d := 0
	for i := range m.Pix {
		if m.Pix[i] != o.Pix[i] {
			d++
		}
	}
	return d
}

// Float converts the mask to a grayscale image with values 0 or 1.
func (m *Mask) Float() *Image {
	im := NewImage(m.W, m.H)
	for i, v := range m.Pix {
		if v != 0 {
			im.Pix[i] = 1
		}
	}
	return im
}

// Config controls rasterization of a layout window.
type Config struct {
	// Window is the layout region to rasterize, in database units.
	Window geom.Rect
	// PixelNM is the pixel edge length in database units; must be > 0 and
	// should divide the window dimensions for exact coverage.
	PixelNM int
}

// Validate reports whether c is usable.
func (c Config) Validate() error {
	if c.PixelNM <= 0 {
		return fmt.Errorf("raster: PixelNM must be positive, got %d", c.PixelNM)
	}
	if c.Window.Empty() {
		return fmt.Errorf("raster: empty window %v", c.Window)
	}
	return nil
}

// Rasterize renders the given shapes clipped to c.Window into an
// area-accurate grayscale image. Overlapping shapes saturate at 1.
func Rasterize(c Config, shapes []geom.Rect) (*Image, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	w := ceilDiv(c.Window.Dx(), c.PixelNM)
	h := ceilDiv(c.Window.Dy(), c.PixelNM)
	im := NewImage(w, h)
	pxArea := float64(c.PixelNM) * float64(c.PixelNM)

	for _, s := range shapes {
		s = s.Intersect(c.Window)
		if s.Empty() {
			continue
		}
		// Shape coordinates relative to the window origin.
		rx0 := s.Min.X - c.Window.Min.X
		ry0 := s.Min.Y - c.Window.Min.Y
		rx1 := s.Max.X - c.Window.Min.X
		ry1 := s.Max.Y - c.Window.Min.Y
		px0, px1 := rx0/c.PixelNM, ceilDiv(rx1, c.PixelNM)
		py0, py1 := ry0/c.PixelNM, ceilDiv(ry1, c.PixelNM)
		for py := py0; py < py1; py++ {
			// Vertical overlap of the shape with this pixel row.
			cy0 := max(ry0, py*c.PixelNM)
			cy1 := min(ry1, (py+1)*c.PixelNM)
			dy := float64(cy1 - cy0)
			row := py * w
			for px := px0; px < px1; px++ {
				cx0 := max(rx0, px*c.PixelNM)
				cx1 := min(rx1, (px+1)*c.PixelNM)
				frac := float64(cx1-cx0) * dy / pxArea
				v := im.Pix[row+px] + frac
				if v > 1 {
					v = 1
				}
				im.Pix[row+px] = v
			}
		}
	}
	return im, nil
}

// Downsample reduces im by an integer factor using box averaging. The image
// dimensions must be divisible by factor.
func Downsample(im *Image, factor int) (*Image, error) {
	if factor <= 0 || im.W%factor != 0 || im.H%factor != 0 {
		return nil, fmt.Errorf("raster: cannot downsample %dx%d by %d", im.W, im.H, factor)
	}
	out := NewImage(im.W/factor, im.H/factor)
	inv := 1 / float64(factor*factor)
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			var s float64
			for dy := 0; dy < factor; dy++ {
				row := (y*factor + dy) * im.W
				for dx := 0; dx < factor; dx++ {
					s += im.Pix[row+x*factor+dx]
				}
			}
			out.Pix[y*out.W+x] = s * inv
		}
	}
	return out, nil
}

// MSE returns the mean squared error between two equally sized images,
// or +Inf if the dimensions differ.
func MSE(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		return math.Inf(1)
	}
	var s float64
	for i := range a.Pix {
		d := a.Pix[i] - b.Pix[i]
		s += d * d
	}
	return s / float64(len(a.Pix))
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
