package raster

import (
	"math/rand"
	"testing"

	"github.com/golitho/hsd/internal/geom"
)

func BenchmarkRasterize128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var shapes []geom.Rect
	for i := 0; i < 30; i++ {
		x, y := rng.Intn(900), rng.Intn(900)
		shapes = append(shapes, geom.R(x, y, x+100, y+80))
	}
	cfg := Config{Window: geom.R(0, 0, 1024, 1024), PixelNM: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rasterize(cfg, shapes); err != nil {
			b.Fatal(err)
		}
	}
}
