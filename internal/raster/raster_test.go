package raster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/golitho/hsd/internal/geom"
)

func TestRasterizeFullCoverage(t *testing.T) {
	c := Config{Window: geom.R(0, 0, 100, 100), PixelNM: 10}
	im, err := Rasterize(c, []geom.Rect{geom.R(0, 0, 100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 10 || im.H != 10 {
		t.Fatalf("dims = %dx%d, want 10x10", im.W, im.H)
	}
	for i, v := range im.Pix {
		if v != 1 {
			t.Fatalf("pixel %d = %v, want 1", i, v)
		}
	}
}

func TestRasterizePartialPixel(t *testing.T) {
	c := Config{Window: geom.R(0, 0, 20, 20), PixelNM: 10}
	// A 5x10 shape covers half of pixel (0,0).
	im, err := Rasterize(c, []geom.Rect{geom.R(0, 0, 5, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if got := im.At(0, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("pixel (0,0) = %v, want 0.5", got)
	}
	if got := im.At(1, 0); got != 0 {
		t.Fatalf("pixel (1,0) = %v, want 0", got)
	}
}

func TestRasterizeAreaConservation(t *testing.T) {
	c := Config{Window: geom.R(0, 0, 640, 640), PixelNM: 8}
	shapes := []geom.Rect{
		geom.R(13, 27, 200, 61),
		geom.R(300, 100, 350, 500),
		geom.R(7, 500, 633, 551),
	}
	im, err := Rasterize(c, shapes)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, s := range shapes {
		want += float64(s.Area())
	}
	got := im.Sum() * float64(c.PixelNM) * float64(c.PixelNM)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("rasterized area = %v, want %v", got, want)
	}
}

func TestRasterizeOverlapSaturates(t *testing.T) {
	c := Config{Window: geom.R(0, 0, 10, 10), PixelNM: 10}
	im, err := Rasterize(c, []geom.Rect{geom.R(0, 0, 10, 10), geom.R(0, 0, 10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if got := im.At(0, 0); got != 1 {
		t.Fatalf("overlapping coverage = %v, want 1", got)
	}
}

func TestRasterizeClipsToWindow(t *testing.T) {
	c := Config{Window: geom.R(100, 100, 200, 200), PixelNM: 10}
	im, err := Rasterize(c, []geom.Rect{geom.R(0, 0, 150, 150)})
	if err != nil {
		t.Fatal(err)
	}
	// Covered region inside window: [100,150)x[100,150) = 50x50 nm = 25 px.
	if got := im.Sum(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("sum = %v, want 25", got)
	}
}

func TestRasterizeBadConfig(t *testing.T) {
	if _, err := Rasterize(Config{Window: geom.R(0, 0, 10, 10)}, nil); err == nil {
		t.Fatal("zero PixelNM accepted")
	}
	if _, err := Rasterize(Config{Window: geom.Rect{}, PixelNM: 4}, nil); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestMirrorInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	im := NewImage(13, 9)
	for i := range im.Pix {
		im.Pix[i] = rng.Float64()
	}
	mx := im.MirrorX().MirrorX()
	my := im.MirrorY().MirrorY()
	for i := range im.Pix {
		if im.Pix[i] != mx.Pix[i] || im.Pix[i] != my.Pix[i] {
			t.Fatal("mirror twice is not identity")
		}
	}
}

func TestRotate90FourTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	im := NewImage(7, 11)
	for i := range im.Pix {
		im.Pix[i] = rng.Float64()
	}
	r := im.Rotate90()
	if r.W != im.H || r.H != im.W {
		t.Fatalf("rotated dims = %dx%d", r.W, r.H)
	}
	r4 := r.Rotate90().Rotate90().Rotate90()
	for i := range im.Pix {
		if im.Pix[i] != r4.Pix[i] {
			t.Fatal("four rotations are not identity")
		}
	}
}

func TestRotatePreservesSum(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func() bool {
		im := NewImage(1+rng.Intn(16), 1+rng.Intn(16))
		for i := range im.Pix {
			im.Pix[i] = rng.Float64()
		}
		return math.Abs(im.Rotate90().Sum()-im.Sum()) < 1e-9 &&
			math.Abs(im.MirrorX().Sum()-im.Sum()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdAndMask(t *testing.T) {
	im := NewImage(2, 2)
	im.Pix = []float64{0.2, 0.5, 0.7, 0.49}
	m := im.Threshold(0.5)
	want := []uint8{0, 1, 1, 0}
	for i := range want {
		if m.Pix[i] != want[i] {
			t.Fatalf("mask[%d] = %d, want %d", i, m.Pix[i], want[i])
		}
	}
	if m.Count() != 2 {
		t.Fatalf("Count = %d, want 2", m.Count())
	}
}

func TestMaskHamming(t *testing.T) {
	a, b := NewMask(3, 3), NewMask(3, 3)
	a.Set(0, 0, 1)
	b.Set(2, 2, 1)
	if d := a.Hamming(b); d != 2 {
		t.Fatalf("Hamming = %d, want 2", d)
	}
	if d := a.Hamming(a); d != 0 {
		t.Fatalf("self Hamming = %d, want 0", d)
	}
	c := NewMask(2, 2)
	if d := a.Hamming(c); d != 9+4 {
		t.Fatalf("dim-mismatch Hamming = %d, want 13", d)
	}
}

func TestDownsample(t *testing.T) {
	im := NewImage(4, 4)
	for i := range im.Pix {
		im.Pix[i] = 1
	}
	out, err := Downsample(im, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 2 || out.H != 2 {
		t.Fatalf("dims = %dx%d", out.W, out.H)
	}
	for _, v := range out.Pix {
		if v != 1 {
			t.Fatalf("downsampled value = %v, want 1", v)
		}
	}
	if _, err := Downsample(im, 3); err == nil {
		t.Fatal("non-divisible factor accepted")
	}
}

func TestMSE(t *testing.T) {
	a, b := NewImage(2, 1), NewImage(2, 1)
	a.Pix = []float64{1, 0}
	b.Pix = []float64{0, 0}
	if got := MSE(a, b); got != 0.5 {
		t.Fatalf("MSE = %v, want 0.5", got)
	}
	if !math.IsInf(MSE(a, NewImage(3, 1)), 1) {
		t.Fatal("dimension mismatch should be +Inf")
	}
}

func TestImageAtSetBounds(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(-1, 0, 5)
	im.Set(0, 99, 5)
	if im.Sum() != 0 {
		t.Fatal("out-of-range Set wrote data")
	}
	if im.At(-1, -1) != 0 || im.At(2, 0) != 0 {
		t.Fatal("out-of-range At returned nonzero")
	}
}

func TestMaskFloatAndImageClone(t *testing.T) {
	m := NewMask(2, 2)
	m.Set(1, 1, 1)
	im := m.Float()
	if im.At(1, 1) != 1 || im.At(0, 0) != 0 {
		t.Fatal("Float conversion wrong")
	}
	c := im.Clone()
	c.Set(0, 0, 0.7)
	if im.At(0, 0) != 0 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestMaskSetOutOfRangeIgnored(t *testing.T) {
	m := NewMask(2, 2)
	m.Set(-1, 0, 1)
	m.Set(5, 5, 1)
	if m.Count() != 0 {
		t.Fatal("out-of-range Set wrote bits")
	}
	if m.At(-1, 0) != 0 || m.At(9, 9) != 0 {
		t.Fatal("out-of-range At nonzero")
	}
}

func TestRasterizeManyOverlappingShapes(t *testing.T) {
	c := Config{Window: geom.R(0, 0, 64, 64), PixelNM: 8}
	shapes := make([]geom.Rect, 50)
	for i := range shapes {
		shapes[i] = geom.R(0, 0, 64, 64)
	}
	im, err := Rasterize(c, shapes)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range im.Pix {
		if v != 1 {
			t.Fatalf("saturation failed: %v", v)
		}
	}
}
