package layout

import (
	"errors"
	"testing"

	"github.com/golitho/hsd/internal/geom"
)

// failWriter fails after n bytes.
type failWriter struct {
	n int
}

var errSink = errors.New("sink full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errSink
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errSink
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteFailurePropagates(t *testing.T) {
	l := New("w")
	for i := 0; i < 100; i++ {
		if err := l.AddRect(geom.R(i*10, 0, i*10+5, 5)); err != nil {
			t.Fatal(err)
		}
	}
	for _, budget := range []int{0, 3, 64, 512} {
		if err := Write(&failWriter{n: budget}, l); err == nil {
			t.Fatalf("budget %d: write succeeded on failing writer", budget)
		}
	}
}

func TestQueryAfterManyInserts(t *testing.T) {
	// Stress the grid index: many shapes in one cell plus strays.
	l := NewWithGrid("dense", 128)
	for i := 0; i < 500; i++ {
		if err := l.AddRect(geom.R(i%20, (i/20)*3, i%20+2, (i/20)*3+2)); err != nil {
			t.Fatal(err)
		}
	}
	got := l.Query(geom.R(0, 0, 100, 100))
	want := 0
	for _, s := range l.Shapes() {
		if s.Overlaps(geom.R(0, 0, 100, 100)) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("query = %d, want %d", len(got), want)
	}
}

func TestClipAtNegativeCoordinates(t *testing.T) {
	l := New("neg")
	if err := l.AddRect(geom.R(-2000, -2000, -1000, -1900)); err != nil {
		t.Fatal(err)
	}
	clip, err := l.ClipAt(geom.Pt(-1500, -1950), 1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(clip.Shapes) != 1 {
		t.Fatalf("shapes = %d", len(clip.Shapes))
	}
	if clip.Density() <= 0 {
		t.Fatal("zero density over covered window")
	}
}
