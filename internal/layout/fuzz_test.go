package layout

import (
	"bytes"
	"strings"
	"testing"

	"github.com/golitho/hsd/internal/geom"
)

// FuzzParseGLT throws arbitrary bytes at the GLT reader. The parser must
// never panic; when it accepts an input, the layout must survive a
// Write/Read round trip unchanged.
func FuzzParseGLT(f *testing.F) {
	l := New("seed")
	for _, r := range []geom.Rect{
		geom.R(0, 0, 100, 50),
		geom.R(-30, -40, 10, 20),
		geom.R(1000, 1000, 1064, 1512),
	} {
		if err := l.AddRect(r); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("GLT 1\nLAYOUT x\nEND\n"))
	f.Add([]byte("GLT 1\nLAYOUT x\nRECT 0 0 1 1\n"))                 // truncated
	f.Add([]byte("GLT 1\n# comment\nLAYOUT x\nRECT a b c d\nEND\n")) // bad coords
	f.Add([]byte("GLT 1\nLAYOUT x\nRECT 5 5 5 9\nEND\n"))            // empty rect
	f.Add([]byte("GLT 1\nLAYOUT x\nRECT -2000000000 -2000000000 2000000000 2000000000\nEND\n"))
	f.Add([]byte("GLT 2\nLAYOUT x\nEND\n")) // wrong version
	f.Add([]byte(""))
	f.Add([]byte("\x00\xff\x00\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<18 {
			t.Skip("oversized input")
		}
		parsed, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, parsed); err != nil {
			t.Fatalf("rewrite of accepted input failed: %v", err)
		}
		again, err := Read(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("reread of own output failed: %v", err)
		}
		if again.NumShapes() != parsed.NumShapes() {
			t.Fatalf("round trip changed shape count: %d -> %d", parsed.NumShapes(), again.NumShapes())
		}
		if again.Bounds() != parsed.Bounds() {
			t.Fatalf("round trip changed bounds: %v -> %v", parsed.Bounds(), again.Bounds())
		}
	})
}
