package layout

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"github.com/golitho/hsd/internal/geom"
)

// clipAt extracts a clip and fails the test on error.
func clipAt(t *testing.T, l *Layout, c geom.Point) Clip {
	t.Helper()
	clip, err := l.ClipAt(c, 1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return clip
}

func TestFingerprintTranslationInvariant(t *testing.T) {
	l := New("a")
	shifted := New("b")
	const dx, dy = 70000, -3100
	rects := []geom.Rect{
		geom.R(10, 10, 200, 64),
		geom.R(300, 100, 364, 800),
		geom.R(-50, 400, 500, 460),
	}
	for _, r := range rects {
		if err := l.AddRect(r); err != nil {
			t.Fatal(err)
		}
		if err := shifted.AddRect(r.Translate(geom.Pt(dx, dy))); err != nil {
			t.Fatal(err)
		}
	}
	a := clipAt(t, l, geom.Pt(256, 256))
	b := clipAt(t, shifted, geom.Pt(256+dx, 256+dy))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("translated clip fingerprint differs: %v vs %v", a.Fingerprint(), b.Fingerprint())
	}
}

func TestFingerprintOrderInvariant(t *testing.T) {
	rects := []geom.Rect{
		geom.R(0, 0, 100, 40),
		geom.R(200, 0, 300, 40),
		geom.R(0, 200, 100, 240),
	}
	fwd, rev := New("fwd"), New("rev")
	for i := range rects {
		if err := fwd.AddRect(rects[i]); err != nil {
			t.Fatal(err)
		}
		if err := rev.AddRect(rects[len(rects)-1-i]); err != nil {
			t.Fatal(err)
		}
	}
	a, b := clipAt(t, fwd, geom.Pt(150, 120)), clipAt(t, rev, geom.Pt(150, 120))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on shape insertion order")
	}
}

func TestFingerprintDistinguishesGeometry(t *testing.T) {
	base := Clip{
		Window: geom.R(0, 0, 1024, 1024),
		Core:   geom.R(256, 256, 768, 768),
		Shapes: []geom.Rect{geom.R(10, 10, 200, 60)},
	}
	seen := map[Fingerprint]string{base.Fingerprint(): "base"}
	variants := map[string]Clip{
		"moved shape": {Window: base.Window, Core: base.Core,
			Shapes: []geom.Rect{geom.R(10, 12, 200, 62)}},
		"extra shape": {Window: base.Window, Core: base.Core,
			Shapes: []geom.Rect{geom.R(10, 10, 200, 60), geom.R(500, 500, 520, 520)}},
		"bigger core": {Window: base.Window, Core: geom.R(128, 128, 896, 896),
			Shapes: base.Shapes},
		"bigger window": {Window: geom.R(0, 0, 2048, 2048), Core: base.Core,
			Shapes: base.Shapes},
		"empty": {Window: base.Window, Core: base.Core},
	}
	for name, c := range variants {
		fp := c.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("%q collides with %q", name, prev)
		}
		seen[fp] = name
	}
}

// FuzzClipFingerprint asserts the two cache-correctness invariants of
// the canonical hash on fuzz-generated clips: translating a clip to any
// offset never changes its fingerprint, and clips with different
// canonical geometry never collide within the run's corpus.
func FuzzClipFingerprint(f *testing.F) {
	f.Add(int64(1), 3, 7000, -9000)
	f.Add(int64(42), 1, 0, 0)
	f.Add(int64(7), 12, -123456, 654321)
	corpus := map[Fingerprint]string{}
	f.Fuzz(func(t *testing.T, seed int64, n, dx, dy int) {
		if n < 0 || n > 64 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		clip := Clip{
			Window: geom.R(0, 0, 1024, 1024),
			Core:   geom.R(256, 256, 768, 768),
		}
		for i := 0; i < n; i++ {
			x0, y0 := rng.Intn(1000), rng.Intn(1000)
			clip.Shapes = append(clip.Shapes,
				geom.R(x0, y0, x0+1+rng.Intn(64), y0+1+rng.Intn(64)))
		}
		fp := clip.Fingerprint()

		d := geom.Pt(dx, dy)
		moved := Clip{Window: clip.Window.Translate(d), Core: clip.Core.Translate(d)}
		for _, s := range clip.Shapes {
			moved.Shapes = append(moved.Shapes, s.Translate(d))
		}
		if got := moved.Fingerprint(); got != fp {
			t.Fatalf("translation by %v changed fingerprint: %v vs %v", d, got, fp)
		}

		// Collision audit: identical canonical encodings may (must)
		// repeat, different ones never share a fingerprint.
		canon := canonicalKey(clip)
		if prev, ok := corpus[fp]; ok {
			if prev != canon {
				t.Fatalf("fingerprint collision:\n%s\nvs\n%s", prev, canon)
			}
		} else {
			corpus[fp] = canon
		}
	})
}

// canonicalKey renders the clip's canonical form as a comparable string
// (the fuzz target's independent notion of "same geometry").
func canonicalKey(c Clip) string {
	t := c.Translate()
	shapes := append([]geom.Rect(nil), t.Shapes...)
	for i := range shapes {
		for j := i + 1; j < len(shapes); j++ {
			if rectLess(shapes[j], shapes[i]) {
				shapes[i], shapes[j] = shapes[j], shapes[i]
			}
		}
	}
	key := make([]byte, 0, 64+32*len(shapes))
	app := func(v int) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(int64(v)))
		key = append(key, b[:]...)
	}
	for _, r := range append([]geom.Rect{t.Window, t.Core}, shapes...) {
		app(r.Min.X)
		app(r.Min.Y)
		app(r.Max.X)
		app(r.Max.Y)
	}
	return fmt.Sprintf("%x", key)
}
