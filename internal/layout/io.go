package layout

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/golitho/hsd/internal/geom"
)

// The GLT (Go Layout Text) format is a line-oriented interchange format:
//
//	GLT 1
//	LAYOUT <name>
//	RECT <x0> <y0> <x1> <y1>
//	...
//	END
//
// Blank lines and lines starting with '#' are ignored. Coordinates are
// integer database units. It deliberately mirrors the subset of GDSII
// needed for single-layer hotspot benchmarks.

const formatHeader = "GLT 1"

// Write serializes l in GLT format.
func Write(w io.Writer, l *Layout) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\nLAYOUT %s\n", formatHeader, sanitizeName(l.Name)); err != nil {
		return fmt.Errorf("layout: write header: %w", err)
	}
	for _, r := range l.shapes {
		if _, err := fmt.Fprintf(bw, "RECT %d %d %d %d\n", r.Min.X, r.Min.Y, r.Max.X, r.Max.Y); err != nil {
			return fmt.Errorf("layout: write rect: %w", err)
		}
	}
	if _, err := fmt.Fprintln(bw, "END"); err != nil {
		return fmt.Errorf("layout: write footer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("layout: flush: %w", err)
	}
	return nil
}

// Read parses a GLT stream into a layout.
func Read(r io.Reader) (*Layout, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}

	// scanErr surfaces the underlying reader error (e.g. a body-size
	// limit) which would otherwise masquerade as a truncated file.
	scanErr := func() error {
		if err := sc.Err(); err != nil {
			return fmt.Errorf("layout: scan: %w", err)
		}
		return nil
	}

	line, ok := next()
	if !ok || line != formatHeader {
		if err := scanErr(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("layout: line %d: missing %q header", lineNo, formatHeader)
	}
	line, ok = next()
	if !ok || !strings.HasPrefix(line, "LAYOUT ") {
		if err := scanErr(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("layout: line %d: missing LAYOUT record", lineNo)
	}
	l := New(strings.TrimSpace(strings.TrimPrefix(line, "LAYOUT ")))

	for {
		line, ok = next()
		if !ok {
			if err := scanErr(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("layout: line %d: unexpected EOF before END", lineNo)
		}
		if line == "END" {
			break
		}
		fields := strings.Fields(line)
		if len(fields) != 5 || fields[0] != "RECT" {
			return nil, fmt.Errorf("layout: line %d: malformed record %q", lineNo, line)
		}
		var coords [4]int
		for i, f := range fields[1:] {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("layout: line %d: bad coordinate %q: %w", lineNo, f, err)
			}
			coords[i] = v
		}
		if err := l.AddRect(geom.R(coords[0], coords[1], coords[2], coords[3])); err != nil {
			return nil, fmt.Errorf("layout: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("layout: scan: %w", err)
	}
	return l, nil
}

func sanitizeName(s string) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return "unnamed"
	}
	return strings.Map(func(r rune) rune {
		if r == '\n' || r == '\r' {
			return '_'
		}
		return r
	}, s)
}
