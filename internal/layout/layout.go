// Package layout models a single-layer VLSI mask layout as a collection of
// axis-aligned rectangles with a uniform-grid spatial index, and provides
// clip (window) extraction for hotspot detection.
//
// Rectilinear polygons are accepted and decomposed into rectangles on
// insertion. Coordinates are integer database units (nanometres).
package layout

import (
	"errors"
	"fmt"
	"sort"

	"github.com/golitho/hsd/internal/geom"
)

// DefaultGridNM is the spatial-index cell edge used by New.
const DefaultGridNM = 2048

// ErrEmptyShape is returned when an empty rectangle is inserted.
var ErrEmptyShape = errors.New("layout: empty shape")

// Layout is a single-layer mask layout. It is not safe for concurrent
// mutation; concurrent reads are safe once construction is complete.
type Layout struct {
	Name string

	shapes []geom.Rect
	bounds geom.Rect
	gridNM int
	// cells maps grid cell -> indices into shapes overlapping that cell.
	cells map[cellKey][]int32
	// large holds indices of shapes spanning more than maxIndexCells grid
	// cells; they are scanned linearly by every query instead of being
	// fanned out into the cell map, which bounds index memory even for
	// degenerate inputs (e.g. a parsed rectangle with near-int32 extents).
	large []int32
}

// maxIndexCells bounds how many grid cells a single shape may fan out to
// in the cell map, and how many cells a query enumerates before falling
// back to a linear scan.
const maxIndexCells = 1 << 12

type cellKey struct{ cx, cy int }

// New returns an empty layout with the default index granularity.
func New(name string) *Layout { return NewWithGrid(name, DefaultGridNM) }

// NewWithGrid returns an empty layout whose spatial index uses cells of the
// given edge length in database units. gridNM must be positive.
func NewWithGrid(name string, gridNM int) *Layout {
	if gridNM <= 0 {
		gridNM = DefaultGridNM
	}
	return &Layout{
		Name:   name,
		gridNM: gridNM,
		cells:  make(map[cellKey][]int32),
	}
}

// NumShapes returns the number of stored rectangles.
func (l *Layout) NumShapes() int { return len(l.shapes) }

// Bounds returns the bounding box of all shapes, empty when no shapes exist.
func (l *Layout) Bounds() geom.Rect { return l.bounds }

// Shapes returns a copy of all stored rectangles.
func (l *Layout) Shapes() []geom.Rect {
	out := make([]geom.Rect, len(l.shapes))
	copy(out, l.shapes)
	return out
}

// AddRect inserts one rectangle. Empty rectangles are rejected.
func (l *Layout) AddRect(r geom.Rect) error {
	r = r.Canon()
	if r.Empty() {
		return fmt.Errorf("%w: %v", ErrEmptyShape, r)
	}
	idx := int32(len(l.shapes))
	l.shapes = append(l.shapes, r)
	l.bounds = l.bounds.Union(r)
	if l.cellSpan(r) > maxIndexCells {
		l.large = append(l.large, idx)
		return nil
	}
	for _, k := range l.cellsOf(r) {
		l.cells[k] = append(l.cells[k], idx)
	}
	return nil
}

// AddPolygon decomposes a rectilinear polygon into rectangles and inserts
// them all; nothing is inserted if the polygon is invalid.
func (l *Layout) AddPolygon(p geom.Polygon) error {
	rects, err := p.Rectangles()
	if err != nil {
		return fmt.Errorf("layout: add polygon: %w", err)
	}
	for _, r := range rects {
		if err := l.AddRect(r); err != nil {
			return err
		}
	}
	return nil
}

func (l *Layout) cellsOf(r geom.Rect) []cellKey {
	cx0 := floorDiv(r.Min.X, l.gridNM)
	cy0 := floorDiv(r.Min.Y, l.gridNM)
	cx1 := floorDiv(r.Max.X-1, l.gridNM)
	cy1 := floorDiv(r.Max.Y-1, l.gridNM)
	keys := make([]cellKey, 0, (cx1-cx0+1)*(cy1-cy0+1))
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			keys = append(keys, cellKey{cx: cx, cy: cy})
		}
	}
	return keys
}

// Query returns all rectangles overlapping the window, in insertion order,
// without duplicates. Shapes merely touching the window edge (zero-area
// overlap) are excluded, consistent with half-open Rect semantics.
func (l *Layout) Query(window geom.Rect) []geom.Rect {
	window = window.Canon()
	if window.Empty() {
		return nil
	}
	seen := make(map[int32]bool)
	var ids []int32
	// Shapes only exist inside bounds, so probing the intersection keeps
	// the cell walk proportional to the layout, not the window.
	probe := window.Intersect(l.bounds)
	if probe.Empty() {
		return nil
	}
	if l.cellSpan(probe) > maxIndexCells {
		// Degenerate extent: scan every shape instead of the cell map.
		for id := range l.shapes {
			if l.shapes[id].Overlaps(window) {
				ids = append(ids, int32(id))
			}
		}
		out := make([]geom.Rect, len(ids))
		for i, id := range ids {
			out[i] = l.shapes[id]
		}
		return out
	}
	for _, k := range l.cellsOf(probe) {
		for _, id := range l.cells[k] {
			if !seen[id] && l.shapes[id].Overlaps(window) {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	for _, id := range l.large {
		if !seen[id] && l.shapes[id].Overlaps(window) {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]geom.Rect, len(ids))
	for i, id := range ids {
		out[i] = l.shapes[id]
	}
	return out
}

// Clip is a square window of a layout together with the shapes overlapping
// it, clipped to the window. Clips are the unit of hotspot classification.
type Clip struct {
	// Window is the clip extent in layout coordinates.
	Window geom.Rect
	// Core is the central region in which printing failures count as
	// hotspots (the contest convention: only core defects are scored).
	Core geom.Rect
	// Shapes are the layout rectangles overlapping Window, clipped to it.
	Shapes []geom.Rect
}

// ClipAt extracts a size x size clip centred at c. coreFrac in (0, 1]
// determines the side length of the core region relative to the window.
func (l *Layout) ClipAt(c geom.Point, size int, coreFrac float64) (Clip, error) {
	if size <= 0 {
		return Clip{}, fmt.Errorf("layout: clip size must be positive, got %d", size)
	}
	if coreFrac <= 0 || coreFrac > 1 {
		return Clip{}, fmt.Errorf("layout: coreFrac must be in (0,1], got %v", coreFrac)
	}
	half := size / 2
	win := geom.R(c.X-half, c.Y-half, c.X-half+size, c.Y-half+size)
	coreHalf := int(float64(size) * coreFrac / 2)
	core := geom.R(c.X-coreHalf, c.Y-coreHalf, c.X+coreHalf, c.Y+coreHalf)
	shapes := l.Query(win)
	clipped := make([]geom.Rect, 0, len(shapes))
	for _, s := range shapes {
		if i := s.Intersect(win); !i.Empty() {
			clipped = append(clipped, i)
		}
	}
	return Clip{Window: win, Core: core, Shapes: clipped}, nil
}

// Translate returns a copy of the clip moved so that Window.Min becomes the
// origin. Useful for canonicalizing clips before feature extraction.
func (c Clip) Translate() Clip {
	d := geom.Pt(-c.Window.Min.X, -c.Window.Min.Y)
	out := Clip{
		Window: c.Window.Translate(d),
		Core:   c.Core.Translate(d),
		Shapes: make([]geom.Rect, len(c.Shapes)),
	}
	for i, s := range c.Shapes {
		out.Shapes[i] = s.Translate(d)
	}
	return out
}

// Density returns the fraction of the window area covered by shapes,
// assuming the shapes do not overlap (true for generated layouts).
func (c Clip) Density() float64 {
	if c.Window.Empty() {
		return 0
	}
	var covered int64
	for _, s := range c.Shapes {
		covered += s.Intersect(c.Window).Area()
	}
	return float64(covered) / float64(c.Window.Area())
}

// cellSpan returns the number of index cells r covers, saturating at
// maxIndexCells+1 so callers can compare without integer overflow.
func (l *Layout) cellSpan(r geom.Rect) int {
	w := int64(floorDiv(r.Max.X-1, l.gridNM)) - int64(floorDiv(r.Min.X, l.gridNM)) + 1
	h := int64(floorDiv(r.Max.Y-1, l.gridNM)) - int64(floorDiv(r.Min.Y, l.gridNM)) + 1
	if w > maxIndexCells || h > maxIndexCells {
		return maxIndexCells + 1
	}
	if n := w * h; n <= maxIndexCells {
		return int(n)
	}
	return maxIndexCells + 1
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
