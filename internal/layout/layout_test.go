package layout

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/golitho/hsd/internal/geom"
)

func TestAddRectRejectsEmpty(t *testing.T) {
	l := New("t")
	if err := l.AddRect(geom.Rect{}); err == nil {
		t.Fatal("empty rect accepted")
	}
	if l.NumShapes() != 0 {
		t.Fatal("empty rect stored")
	}
}

func TestBoundsGrow(t *testing.T) {
	l := New("t")
	mustAdd(t, l, geom.R(0, 0, 10, 10))
	mustAdd(t, l, geom.R(100, -50, 120, 7))
	if !l.Bounds().Eq(geom.R(0, -50, 120, 10)) {
		t.Fatalf("Bounds = %v", l.Bounds())
	}
}

func TestQueryBasic(t *testing.T) {
	l := NewWithGrid("t", 64)
	a := geom.R(0, 0, 10, 10)
	b := geom.R(100, 100, 110, 110)
	mustAdd(t, l, a)
	mustAdd(t, l, b)
	got := l.Query(geom.R(-5, -5, 50, 50))
	if len(got) != 1 || !got[0].Eq(a) {
		t.Fatalf("Query = %v, want [%v]", got, a)
	}
	if got := l.Query(geom.R(10, 0, 20, 10)); len(got) != 0 {
		t.Fatalf("touching shape returned: %v", got)
	}
	if got := l.Query(geom.Rect{}); got != nil {
		t.Fatalf("empty window returned %v", got)
	}
}

func TestQuerySpansGridCells(t *testing.T) {
	l := NewWithGrid("t", 32)
	big := geom.R(-100, -100, 200, 200) // spans many cells
	mustAdd(t, l, big)
	for _, w := range []geom.Rect{
		geom.R(-90, -90, -80, -80),
		geom.R(0, 0, 1, 1),
		geom.R(190, 190, 195, 195),
	} {
		got := l.Query(w)
		if len(got) != 1 || !got[0].Eq(big) {
			t.Fatalf("Query(%v) = %v", w, got)
		}
	}
}

func TestQueryNoDuplicates(t *testing.T) {
	l := NewWithGrid("t", 16)
	mustAdd(t, l, geom.R(0, 0, 100, 100)) // overlaps many cells
	got := l.Query(geom.R(0, 0, 100, 100))
	if len(got) != 1 {
		t.Fatalf("duplicate results: %v", got)
	}
}

func TestQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := NewWithGrid("t", 50)
	var all []geom.Rect
	for i := 0; i < 300; i++ {
		r := geom.R(rng.Intn(1000), rng.Intn(1000), rng.Intn(1000), rng.Intn(1000))
		if r.Empty() {
			continue
		}
		mustAdd(t, l, r)
		all = append(all, r)
	}
	f := func() bool {
		w := geom.R(rng.Intn(1100)-50, rng.Intn(1100)-50, rng.Intn(1100)-50, rng.Intn(1100)-50)
		got := l.Query(w)
		var want int
		for _, r := range all {
			if r.Overlaps(w) {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddPolygon(t *testing.T) {
	l := New("t")
	lshape := geom.Polygon{
		geom.Pt(0, 0), geom.Pt(20, 0), geom.Pt(20, 10),
		geom.Pt(10, 10), geom.Pt(10, 20), geom.Pt(0, 20),
	}
	if err := l.AddPolygon(lshape); err != nil {
		t.Fatal(err)
	}
	var area int64
	for _, s := range l.Shapes() {
		area += s.Area()
	}
	if area != 300 {
		t.Fatalf("polygon area after decomposition = %d, want 300", area)
	}
	bad := geom.Polygon{geom.Pt(0, 0), geom.Pt(5, 7), geom.Pt(0, 7), geom.Pt(0, 3)}
	if err := l.AddPolygon(bad); err == nil {
		t.Fatal("invalid polygon accepted")
	}
}

func TestClipAt(t *testing.T) {
	l := New("t")
	mustAdd(t, l, geom.R(0, 0, 1000, 50))
	clip, err := l.ClipAt(geom.Pt(500, 25), 200, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !clip.Window.Eq(geom.R(400, -75, 600, 125)) {
		t.Fatalf("Window = %v", clip.Window)
	}
	if !clip.Core.Eq(geom.R(450, -25, 550, 75)) {
		t.Fatalf("Core = %v", clip.Core)
	}
	if len(clip.Shapes) != 1 || !clip.Shapes[0].Eq(geom.R(400, 0, 600, 50)) {
		t.Fatalf("Shapes = %v", clip.Shapes)
	}
	// Density: 200x50 covered of 200x200.
	if d := clip.Density(); d != 0.25 {
		t.Fatalf("Density = %v, want 0.25", d)
	}
}

func TestClipAtValidation(t *testing.T) {
	l := New("t")
	if _, err := l.ClipAt(geom.Pt(0, 0), 0, 0.5); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := l.ClipAt(geom.Pt(0, 0), 100, 0); err == nil {
		t.Fatal("zero coreFrac accepted")
	}
	if _, err := l.ClipAt(geom.Pt(0, 0), 100, 1.5); err == nil {
		t.Fatal("coreFrac > 1 accepted")
	}
}

func TestClipTranslate(t *testing.T) {
	l := New("t")
	mustAdd(t, l, geom.R(90, 90, 110, 110))
	clip, err := l.ClipAt(geom.Pt(100, 100), 100, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	tr := clip.Translate()
	if tr.Window.Min != geom.Pt(0, 0) {
		t.Fatalf("translated window min = %v", tr.Window.Min)
	}
	if tr.Density() != clip.Density() {
		t.Fatal("translate changed density")
	}
}

func TestIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := New("roundtrip test")
	for i := 0; i < 100; i++ {
		r := geom.R(rng.Intn(5000), rng.Intn(5000), rng.Intn(5000), rng.Intn(5000))
		if r.Empty() {
			continue
		}
		mustAdd(t, l, r)
	}
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != l.Name {
		t.Fatalf("name = %q, want %q", got.Name, l.Name)
	}
	a, b := l.Shapes(), got.Shapes()
	if len(a) != len(b) {
		t.Fatalf("shape count = %d, want %d", len(b), len(a))
	}
	for i := range a {
		if !a[i].Eq(b[i]) {
			t.Fatalf("shape %d = %v, want %v", i, b[i], a[i])
		}
	}
	if !got.Bounds().Eq(l.Bounds()) {
		t.Fatalf("bounds = %v, want %v", got.Bounds(), l.Bounds())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"GLT 2\nLAYOUT x\nEND\n",
		"GLT 1\nRECT 0 0 1 1\nEND\n",             // missing LAYOUT
		"GLT 1\nLAYOUT x\nRECT 0 0 1\nEND\n",     // short rect
		"GLT 1\nLAYOUT x\nRECT a b c d\nEND\n",   // non-numeric
		"GLT 1\nLAYOUT x\nRECT 0 0 0 10\nEND\n",  // empty rect
		"GLT 1\nLAYOUT x\nRECT 0 0 1 1\n",        // missing END
		"GLT 1\nLAYOUT x\nTRIANGLE 0 0 1 1\nEND", // unknown record
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header comment\n\nGLT 1\nLAYOUT demo\n# a rect\nRECT 0 0 5 5\n\nEND\n"
	l, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if l.NumShapes() != 1 {
		t.Fatalf("shapes = %d, want 1", l.NumShapes())
	}
}

func mustAdd(t *testing.T, l *Layout, r geom.Rect) {
	t.Helper()
	if err := l.AddRect(r); err != nil {
		t.Fatalf("AddRect(%v): %v", r, err)
	}
}
