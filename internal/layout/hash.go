// Content-addressed clip fingerprinting.
//
// Real layouts are dominated by repeated standard-cell geometry, so the
// same clip contents recur across a full-chip scan at different
// absolute positions. Fingerprint canonicalizes a clip to a
// position-independent byte encoding and hashes it, giving scan caches
// a key under which translated copies of the same geometry collide on
// purpose — and nothing else collides in practice (128 bits of
// SHA-256).

package layout

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"github.com/golitho/hsd/internal/geom"
)

// Fingerprint is a 128-bit content hash of a clip's canonical geometry.
// Two clips that differ only by translation share a fingerprint; clips
// with different window size, core geometry, or shapes do not (up to
// SHA-256 collisions, which no test corpus will produce).
type Fingerprint [16]byte

// String returns the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// fingerprintMagic versions the canonical encoding; bump it if the
// encoding changes so persisted caches cannot mix schemes.
var fingerprintMagic = []byte("HSDCFP1\n")

// Fingerprint returns the translation-invariant content hash of the
// clip: shapes are translated so Window.Min becomes the origin, sorted
// into a canonical order, and hashed together with the window extent
// and the core rectangle's window-relative position.
//
// The shape sort makes the hash independent of insertion order, so two
// clips extracted from layouts that drew the same geometry in different
// order still match.
func (c Clip) Fingerprint() Fingerprint {
	d := geom.Pt(-c.Window.Min.X, -c.Window.Min.Y)
	shapes := make([]geom.Rect, len(c.Shapes))
	for i, s := range c.Shapes {
		shapes[i] = s.Translate(d)
	}
	sort.Slice(shapes, func(i, j int) bool { return rectLess(shapes[i], shapes[j]) })

	h := sha256.New()
	h.Write(fingerprintMagic)
	var buf [8 * 4]byte
	putRect := func(r geom.Rect) {
		binary.LittleEndian.PutUint64(buf[0:], uint64(int64(r.Min.X)))
		binary.LittleEndian.PutUint64(buf[8:], uint64(int64(r.Min.Y)))
		binary.LittleEndian.PutUint64(buf[16:], uint64(int64(r.Max.X)))
		binary.LittleEndian.PutUint64(buf[24:], uint64(int64(r.Max.Y)))
		h.Write(buf[:])
	}
	putRect(c.Window.Translate(d))
	putRect(c.Core.Translate(d))
	binary.LittleEndian.PutUint64(buf[:8], uint64(len(shapes)))
	h.Write(buf[:8])
	for _, s := range shapes {
		putRect(s)
	}
	var out Fingerprint
	copy(out[:], h.Sum(nil))
	return out
}

// rectLess orders rectangles lexicographically by (MinY, MinX, MaxY,
// MaxX), the canonical shape order of the fingerprint encoding.
func rectLess(a, b geom.Rect) bool {
	if a.Min.Y != b.Min.Y {
		return a.Min.Y < b.Min.Y
	}
	if a.Min.X != b.Min.X {
		return a.Min.X < b.Min.X
	}
	if a.Max.Y != b.Max.Y {
		return a.Max.Y < b.Max.Y
	}
	return a.Max.X < b.Max.X
}
