// Package gdsii implements the subset of the Calma GDSII stream format
// needed to exchange single-layer hotspot benchmark layouts with EDA
// tools: a library with one structure whose elements are rectilinear
// BOUNDARY polygons.
//
// The format is the industry-standard binary layout interchange: a
// sequence of records, each with a big-endian 2-byte length, a record
// type byte, and a data type byte. Reals are the GDSII excess-64
// base-16 floating point format.
package gdsii

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

// Record types used by this subset.
const (
	recHEADER   = 0x00
	recBGNLIB   = 0x01
	recLIBNAME  = 0x02
	recUNITS    = 0x03
	recENDLIB   = 0x04
	recBGNSTR   = 0x05
	recSTRNAME  = 0x06
	recENDSTR   = 0x07
	recBOUNDARY = 0x08
	recLAYER    = 0x0d
	recDATATYPE = 0x0e
	recXY       = 0x10
	recENDEL    = 0x11
)

// Data types.
const (
	dtNone   = 0x00
	dtInt16  = 0x02
	dtInt32  = 0x03
	dtReal64 = 0x05
	dtASCII  = 0x06
)

// DefaultLayer is the GDSII layer number used when writing.
const DefaultLayer = 1

// ErrTruncated is returned when the stream ends mid-record.
var ErrTruncated = errors.New("gdsii: truncated stream")

// encodeReal64 converts v to the GDSII 8-byte excess-64 base-16 real.
func encodeReal64(v float64) uint64 {
	if v == 0 {
		return 0
	}
	var sign uint64
	if v < 0 {
		sign = 1 << 63
		v = -v
	}
	// Normalize mantissa into [1/16, 1) with exponent in powers of 16.
	exp := 64
	for v >= 1 {
		v /= 16
		exp++
	}
	for v < 1.0/16 {
		v *= 16
		exp--
	}
	mant := uint64(v * math.Pow(2, 56))
	if mant >= 1<<56 { // rounding overflow
		mant >>= 4
		exp++
	}
	return sign | uint64(exp)<<56 | mant
}

// decodeReal64 converts the GDSII 8-byte real to float64.
func decodeReal64(bits uint64) float64 {
	if bits&^(1<<63) == 0 {
		return 0
	}
	sign := 1.0
	if bits&(1<<63) != 0 {
		sign = -1
	}
	exp := int((bits>>56)&0x7f) - 64
	mant := float64(bits&((1<<56)-1)) / math.Pow(2, 56)
	return sign * mant * math.Pow(16, float64(exp))
}

// record is one parsed GDSII record.
type record struct {
	typ  byte
	dt   byte
	data []byte
}

func writeRecord(w io.Writer, typ, dt byte, data []byte) error {
	if len(data)%2 != 0 {
		return fmt.Errorf("gdsii: odd record payload %d", len(data))
	}
	length := uint16(4 + len(data))
	hdr := []byte{byte(length >> 8), byte(length), typ, dt}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(data) > 0 {
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	return nil
}

func readRecord(r io.Reader) (record, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return record{}, io.EOF
		}
		return record{}, fmt.Errorf("%w: record header", ErrTruncated)
	}
	length := int(hdr[0])<<8 | int(hdr[1])
	if length < 4 {
		return record{}, fmt.Errorf("gdsii: invalid record length %d", length)
	}
	rec := record{typ: hdr[2], dt: hdr[3]}
	if length > 4 {
		rec.data = make([]byte, length-4)
		if _, err := io.ReadFull(r, rec.data); err != nil {
			return record{}, fmt.Errorf("%w: record body", ErrTruncated)
		}
	}
	return rec, nil
}

func int16Payload(vs ...int16) []byte {
	out := make([]byte, 2*len(vs))
	for i, v := range vs {
		binary.BigEndian.PutUint16(out[2*i:], uint16(v))
	}
	return out
}

func asciiPayload(s string) []byte {
	b := []byte(s)
	if len(b)%2 != 0 {
		b = append(b, 0)
	}
	return b
}

// Write serializes a layout as a GDSII library with a single structure.
// Coordinates are written in database units of 1 nm (UNITS 1e-3 user
// units per dbu, 1e-9 m per dbu, the common convention).
func Write(w io.Writer, l *layout.Layout) error {
	bw := bufio.NewWriter(w)
	now := timestampPayload()

	if err := writeRecord(bw, recHEADER, dtInt16, int16Payload(600)); err != nil {
		return err
	}
	if err := writeRecord(bw, recBGNLIB, dtInt16, now); err != nil {
		return err
	}
	name := l.Name
	if name == "" {
		name = "HSD"
	}
	if err := writeRecord(bw, recLIBNAME, dtASCII, asciiPayload(name)); err != nil {
		return err
	}
	units := make([]byte, 16)
	binary.BigEndian.PutUint64(units[0:], encodeReal64(1e-3))
	binary.BigEndian.PutUint64(units[8:], encodeReal64(1e-9))
	if err := writeRecord(bw, recUNITS, dtReal64, units); err != nil {
		return err
	}
	if err := writeRecord(bw, recBGNSTR, dtInt16, now); err != nil {
		return err
	}
	if err := writeRecord(bw, recSTRNAME, dtASCII, asciiPayload("TOP")); err != nil {
		return err
	}
	for _, r := range l.Shapes() {
		if err := writeBoundary(bw, r); err != nil {
			return err
		}
	}
	if err := writeRecord(bw, recENDSTR, dtNone, nil); err != nil {
		return err
	}
	if err := writeRecord(bw, recENDLIB, dtNone, nil); err != nil {
		return err
	}
	return bw.Flush()
}

func timestampPayload() []byte {
	// BGNLIB/BGNSTR carry modification + access times as 6 int16s each.
	// A fixed epoch keeps output byte-for-byte deterministic.
	t := time.Date(2017, 9, 5, 0, 0, 0, 0, time.UTC) // SOCC 2017
	fields := []int16{
		int16(t.Year()), int16(t.Month()), int16(t.Day()),
		int16(t.Hour()), int16(t.Minute()), int16(t.Second()),
	}
	return int16Payload(append(fields, fields...)...)
}

func writeBoundary(w io.Writer, r geom.Rect) error {
	if err := writeRecord(w, recBOUNDARY, dtNone, nil); err != nil {
		return err
	}
	if err := writeRecord(w, recLAYER, dtInt16, int16Payload(DefaultLayer)); err != nil {
		return err
	}
	if err := writeRecord(w, recDATATYPE, dtInt16, int16Payload(0)); err != nil {
		return err
	}
	// Closed ring: 5 points, 2 int32 each.
	pts := []geom.Point{
		r.Min, {X: r.Max.X, Y: r.Min.Y}, r.Max, {X: r.Min.X, Y: r.Max.Y}, r.Min,
	}
	xy := make([]byte, 8*len(pts))
	for i, p := range pts {
		binary.BigEndian.PutUint32(xy[8*i:], uint32(int32(p.X)))
		binary.BigEndian.PutUint32(xy[8*i+4:], uint32(int32(p.Y)))
	}
	if err := writeRecord(w, recXY, dtInt32, xy); err != nil {
		return err
	}
	return writeRecord(w, recENDEL, dtNone, nil)
}

// Read parses a GDSII stream into a layout. All BOUNDARY elements of all
// structures are merged; rectilinear polygons are decomposed into
// rectangles. Unknown records are skipped (the format is self-framing).
func Read(r io.Reader) (*layout.Layout, error) {
	br := bufio.NewReader(r)
	first, err := readRecord(br)
	if err != nil {
		return nil, fmt.Errorf("gdsii: %w", err)
	}
	if first.typ != recHEADER {
		return nil, fmt.Errorf("gdsii: stream does not start with HEADER (got 0x%02x)", first.typ)
	}
	l := layout.New("gdsii")
	inBoundary := false
	sawEndlib := false
	for {
		rec, err := readRecord(br)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		switch rec.typ {
		case recLIBNAME:
			l.Name = trimNul(string(rec.data))
		case recBOUNDARY:
			inBoundary = true
		case recENDEL:
			inBoundary = false
		case recXY:
			if !inBoundary {
				continue // XY of unsupported elements (PATH etc.)
			}
			poly, err := parseXY(rec.data)
			if err != nil {
				return nil, err
			}
			if err := addPolygon(l, poly); err != nil {
				return nil, err
			}
		case recENDLIB:
			sawEndlib = true
		}
		if sawEndlib {
			break
		}
	}
	if !sawEndlib {
		return nil, fmt.Errorf("%w: missing ENDLIB", ErrTruncated)
	}
	return l, nil
}

func trimNul(s string) string {
	for len(s) > 0 && s[len(s)-1] == 0 {
		s = s[:len(s)-1]
	}
	return s
}

func parseXY(data []byte) (geom.Polygon, error) {
	if len(data)%8 != 0 || len(data) < 8*4 {
		return nil, fmt.Errorf("gdsii: malformed XY payload of %d bytes", len(data))
	}
	n := len(data) / 8
	poly := make(geom.Polygon, 0, n)
	for i := 0; i < n; i++ {
		x := int(int32(binary.BigEndian.Uint32(data[8*i:])))
		y := int(int32(binary.BigEndian.Uint32(data[8*i+4:])))
		poly = append(poly, geom.Pt(x, y))
	}
	// The ring is explicitly closed in GDSII; drop the repeated vertex.
	if len(poly) >= 2 && poly[0] == poly[len(poly)-1] {
		poly = poly[:len(poly)-1]
	}
	return poly, nil
}

func addPolygon(l *layout.Layout, poly geom.Polygon) error {
	if len(poly) == 4 {
		b := poly.Bounds()
		if poly.Area() == b.Area() { // axis-aligned rectangle
			return l.AddRect(b)
		}
	}
	return l.AddPolygon(poly)
}
