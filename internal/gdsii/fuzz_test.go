package gdsii

import (
	"bytes"
	"testing"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

// FuzzGDSIIRead throws arbitrary bytes at the GDSII reader. The parser
// must never panic; accepted inputs must survive a Write/Read round trip
// with shape count and bounds intact.
func FuzzGDSIIRead(f *testing.F) {
	l := layout.New("seed")
	for _, r := range []geom.Rect{
		geom.R(0, 0, 64, 64),
		geom.R(-128, 32, -16, 96),
		geom.R(500, -500, 564, -380),
	} {
		if err := l.AddRect(r); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                       // truncated mid-stream
	f.Add(valid[:5])                                  // truncated record header
	f.Add([]byte{})                                   // empty
	f.Add([]byte{0x00, 0x06, 0x00, 0x02, 0x02, 0x58}) // lone HEADER
	f.Add([]byte{0x00, 0x02, 0x00, 0x00})             // invalid length 2
	f.Add([]byte("not gdsii at all"))
	// Valid envelope with a degenerate 4-point XY (zero-length edges).
	env := append([]byte(nil), valid[:4+2]...)
	env = append(env,
		0x00, 0x04, recBOUNDARY, dtNone,
		0x00, 0x2c, recXY, dtInt32,
		0, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0,
		0x00, 0x04, recENDEL, dtNone,
		0x00, 0x04, recENDLIB, dtNone,
	)
	f.Add(env)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		parsed, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, parsed); err != nil {
			t.Fatalf("rewrite of accepted input failed: %v", err)
		}
		again, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("reread of own output failed: %v", err)
		}
		if again.NumShapes() != parsed.NumShapes() {
			t.Fatalf("round trip changed shape count: %d -> %d", parsed.NumShapes(), again.NumShapes())
		}
		if again.Bounds() != parsed.Bounds() {
			t.Fatalf("round trip changed bounds: %v -> %v", parsed.Bounds(), again.Bounds())
		}
	})
}
