package gdsii

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

func TestReal64KnownValues(t *testing.T) {
	// 1.0 in GDSII real: exponent 65 (16^1), mantissa 1/16 -> 0x4110...0.
	if got := encodeReal64(1); got != 0x4110000000000000 {
		t.Fatalf("encode(1) = %#016x", got)
	}
	if got := decodeReal64(0x4110000000000000); got != 1 {
		t.Fatalf("decode = %v", got)
	}
	if encodeReal64(0) != 0 || decodeReal64(0) != 0 {
		t.Fatal("zero encoding wrong")
	}
	// Negative values set the sign bit.
	if encodeReal64(-1)>>63 != 1 {
		t.Fatal("sign bit not set")
	}
}

func TestReal64RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		v := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
		got := decodeReal64(encodeReal64(v))
		return math.Abs(got-v) <= 1e-12*math.Abs(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1e-9, 1e-3, 0.5, 2, 1024, -3.25} {
		got := decodeReal64(encodeReal64(v))
		if math.Abs(got-v) > 1e-12*math.Abs(v) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := layout.New("roundtrip")
	var want []geom.Rect
	for i := 0; i < 200; i++ {
		r := geom.R(rng.Intn(100000), rng.Intn(100000), rng.Intn(100000), rng.Intn(100000))
		if r.Empty() {
			continue
		}
		if err := l.AddRect(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "roundtrip" {
		t.Fatalf("library name = %q", got.Name)
	}
	shapes := got.Shapes()
	if len(shapes) != len(want) {
		t.Fatalf("shape count = %d, want %d", len(shapes), len(want))
	}
	for i := range want {
		if !shapes[i].Eq(want[i]) {
			t.Fatalf("shape %d = %v, want %v", i, shapes[i], want[i])
		}
	}
}

func TestWriteDeterministic(t *testing.T) {
	l := layout.New("det")
	if err := l.AddRect(geom.R(0, 0, 100, 200)); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := Write(&a, l); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, l); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("GDSII output not byte-for-byte deterministic")
	}
}

func TestReadNegativeCoordinates(t *testing.T) {
	l := layout.New("neg")
	if err := l.AddRect(geom.R(-5000, -3000, -1000, -500)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShapes() != 1 || !got.Shapes()[0].Eq(geom.R(-5000, -3000, -1000, -500)) {
		t.Fatalf("negative-coordinate shape mangled: %v", got.Shapes())
	}
}

func TestReadLShapedBoundary(t *testing.T) {
	// Hand-build a stream containing an L-shaped boundary; Read must
	// decompose it into rectangles with the same total area.
	var buf bytes.Buffer
	mustRec := func(typ, dt byte, data []byte) {
		if err := writeRecord(&buf, typ, dt, data); err != nil {
			t.Fatal(err)
		}
	}
	mustRec(recHEADER, dtInt16, int16Payload(600))
	mustRec(recBGNLIB, dtInt16, timestampPayload())
	mustRec(recLIBNAME, dtASCII, asciiPayload("L"))
	mustRec(recBGNSTR, dtInt16, timestampPayload())
	mustRec(recSTRNAME, dtASCII, asciiPayload("TOP"))
	mustRec(recBOUNDARY, dtNone, nil)
	mustRec(recLAYER, dtInt16, int16Payload(1))
	mustRec(recDATATYPE, dtInt16, int16Payload(0))
	pts := []int32{0, 0, 20, 0, 20, 10, 10, 10, 10, 20, 0, 20, 0, 0}
	xy := make([]byte, 4*len(pts))
	for i, v := range pts {
		xy[4*i] = byte(uint32(v) >> 24)
		xy[4*i+1] = byte(uint32(v) >> 16)
		xy[4*i+2] = byte(uint32(v) >> 8)
		xy[4*i+3] = byte(uint32(v))
	}
	mustRec(recXY, dtInt32, xy)
	mustRec(recENDEL, dtNone, nil)
	mustRec(recENDSTR, dtNone, nil)
	mustRec(recENDLIB, dtNone, nil)

	l, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var area int64
	for _, s := range l.Shapes() {
		area += s.Area()
	}
	if area != 300 {
		t.Fatalf("L-shape area = %d, want 300", area)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not gdsii at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid header, then truncation.
	var buf bytes.Buffer
	if err := writeRecord(&buf, recHEADER, dtInt16, int16Payload(600)); err != nil {
		t.Fatal(err)
	}
	buf.Write([]byte{0x00})
	if _, err := Read(&buf); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Missing ENDLIB.
	var buf2 bytes.Buffer
	if err := writeRecord(&buf2, recHEADER, dtInt16, int16Payload(600)); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf2); err == nil {
		t.Fatal("stream without ENDLIB accepted")
	}
}

func TestRecordOddPayloadRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeRecord(&buf, recLIBNAME, dtASCII, []byte("abc")); err == nil {
		t.Fatal("odd payload accepted")
	}
}

func TestEmptyLayout(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, layout.New("")); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShapes() != 0 {
		t.Fatal("phantom shapes in empty layout")
	}
	if got.Name != "HSD" {
		t.Fatalf("default name = %q", got.Name)
	}
}
