package svm

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinearSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []int
	for i := 0; i < 80; i++ {
		if i%2 == 0 {
			x = append(x, []float64{rng.Float64() + 2, rng.Float64() + 2})
			y = append(y, 1)
		} else {
			x = append(x, []float64{-rng.Float64() - 2, -rng.Float64() - 2})
			y = append(y, 0)
		}
	}
	m, err := Train(x, y, Config{Kernel: Linear{}, C: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got := m.Predict(x[i]); got != (y[i] == 1) {
			t.Fatalf("sample %d misclassified (decision %v)", i, m.Decision(x[i]))
		}
	}
	if !m.Predict([]float64{5, 5}) || m.Predict([]float64{-5, -5}) {
		t.Fatal("generalization failed on far points")
	}
	if st := m.TrainStats(); st.Passes <= 0 || st.Elapsed <= 0 {
		t.Fatalf("train stats not recorded: %+v", st)
	}
}

func TestRBFXor(t *testing.T) {
	// XOR is not linearly separable; RBF must solve it.
	x := [][]float64{{0, 0}, {1, 1}, {0, 1}, {1, 0}}
	y := []int{0, 0, 1, 1}
	// Replicate with jitter for a non-trivial training set.
	rng := rand.New(rand.NewSource(2))
	var xs [][]float64
	var ys []int
	for rep := 0; rep < 25; rep++ {
		for i := range x {
			xs = append(xs, []float64{
				x[i][0] + rng.NormFloat64()*0.05,
				x[i][1] + rng.NormFloat64()*0.05,
			})
			ys = append(ys, y[i])
		}
	}
	m, err := Train(xs, ys, Config{Kernel: RBF{Gamma: 2}, C: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range xs {
		if m.Predict(xs[i]) == (ys[i] == 1) {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(xs)); frac < 0.95 {
		t.Fatalf("XOR accuracy = %v, want >= 0.95", frac)
	}
}

func TestPosWeightShiftsBoundary(t *testing.T) {
	// Overlapping classes: higher PosWeight must not reduce recall on the
	// positive class.
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		if i%4 == 0 { // minority positive class
			x = append(x, []float64{rng.NormFloat64() + 1.0})
			y = append(y, 1)
		} else {
			x = append(x, []float64{rng.NormFloat64() - 1.0})
			y = append(y, 0)
		}
	}
	recall := func(posW float64) float64 {
		m, err := Train(x, y, Config{Kernel: Linear{}, C: 1, PosWeight: posW, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		tp, pos := 0, 0
		for i := range x {
			if y[i] == 1 {
				pos++
				if m.Predict(x[i]) {
					tp++
				}
			}
		}
		return float64(tp) / float64(pos)
	}
	r1, r10 := recall(1), recall(10)
	if r10 < r1 {
		t.Fatalf("PosWeight 10 recall (%v) below PosWeight 1 recall (%v)", r10, r1)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := Train([][]float64{{1}}, []int{1, 0}, Config{}); err == nil {
		t.Fatal("label length mismatch accepted")
	}
	if _, err := Train([][]float64{{1}, {2, 3}}, []int{0, 1}, Config{}); err == nil {
		t.Fatal("ragged features accepted")
	}
	if _, err := Train([][]float64{{1}, {2}}, []int{1, 1}, Config{}); err == nil {
		t.Fatal("single-class set accepted")
	}
	if _, err := Train([][]float64{{1}, {2}}, []int{1, 2}, Config{}); err == nil {
		t.Fatal("non-binary label accepted")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var x [][]float64
	var y []int
	for i := 0; i < 60; i++ {
		x = append(x, []float64{rng.NormFloat64(), rng.NormFloat64()})
		if x[i][0]+x[i][1] > 0 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	cfg := Config{Kernel: RBF{Gamma: 1}, C: 2, Seed: 7}
	a, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSupport() != b.NumSupport() {
		t.Fatal("support vector count differs across identical runs")
	}
	probe := []float64{0.3, -0.2}
	if math.Abs(a.Decision(probe)-b.Decision(probe)) > 1e-12 {
		t.Fatal("decision differs across identical runs")
	}
}

func TestKernelNames(t *testing.T) {
	if (Linear{}).Name() != "linear" {
		t.Fatal("linear name")
	}
	if (RBF{Gamma: 0.5}).Name() == "" {
		t.Fatal("rbf name empty")
	}
}

func TestRBFKernelProperties(t *testing.T) {
	k := RBF{Gamma: 0.7}
	a := []float64{1, 2, 3}
	if math.Abs(k.Eval(a, a)-1) > 1e-12 {
		t.Fatal("k(a,a) != 1")
	}
	b := []float64{4, 5, 6}
	if k.Eval(a, b) != k.Eval(b, a) {
		t.Fatal("kernel not symmetric")
	}
	if k.Eval(a, b) <= 0 || k.Eval(a, b) >= 1 {
		t.Fatal("rbf out of (0,1) for distinct points")
	}
}

func TestDecisionLinearityOfScores(t *testing.T) {
	// For a linear kernel, Decision is affine: check additivity of the
	// learned decision function on a trained model.
	rng := rand.New(rand.NewSource(10))
	var x [][]float64
	var y []int
	for i := 0; i < 80; i++ {
		x = append(x, []float64{rng.NormFloat64(), rng.NormFloat64()})
		if 2*x[i][0]-x[i][1] > 0 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	m, err := Train(x, y, Config{Kernel: Linear{}, C: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a := []float64{0.5, -0.25}
	b := []float64{-1, 2}
	mid := []float64{(a[0] + b[0]) / 2, (a[1] + b[1]) / 2}
	got := m.Decision(mid)
	want := (m.Decision(a) + m.Decision(b)) / 2
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("linear decision not affine: %v vs %v", got, want)
	}
}

func TestSupportVectorsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var x [][]float64
	var y []int
	for i := 0; i < 120; i++ {
		x = append(x, []float64{rng.NormFloat64()})
		if x[i][0] > 0 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	m, err := Train(x, y, Config{Kernel: Linear{}, C: 5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSupport() > len(x) {
		t.Fatal("more support vectors than samples")
	}
	if m.NumSupport() == 0 {
		t.Fatal("no support vectors")
	}
}
