// Package svm implements a kernel support vector machine trained with a
// simplified SMO algorithm (Platt 1998, in the simplified variant with a
// randomized second working-set choice), the representative shallow
// hotspot classifier of the pre-deep-learning era.
//
// Class-weighted regularization (a larger C on the hotspot class) provides
// the imbalance handling the hotspot literature applies to SVM baselines.
package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/golitho/hsd/internal/tensor"
)

// Kernel is a Mercer kernel over feature vectors.
type Kernel interface {
	// Eval computes k(a, b).
	Eval(a, b []float64) float64
	// Name identifies the kernel in reports.
	Name() string
}

// Linear is the dot-product kernel.
type Linear struct{}

var _ Kernel = Linear{}

// Eval implements Kernel.
func (Linear) Eval(a, b []float64) float64 { return tensor.Dot(a, b) }

// Name implements Kernel.
func (Linear) Name() string { return "linear" }

// RBF is the Gaussian radial basis kernel exp(-gamma * |a-b|^2).
type RBF struct {
	Gamma float64
}

var _ Kernel = RBF{}

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-k.Gamma * d2)
}

// Name implements Kernel.
func (k RBF) Name() string { return fmt.Sprintf("rbf(g=%.3g)", k.Gamma) }

// Config parameterizes training.
type Config struct {
	// Kernel defaults to RBF with gamma 1/dim.
	Kernel Kernel
	// C is the soft-margin penalty (default 1).
	C float64
	// PosWeight scales C for positive (hotspot) samples; > 1 penalizes
	// missed hotspots harder (default 1).
	PosWeight float64
	// Tol is the KKT violation tolerance (default 1e-3).
	Tol float64
	// MaxPasses is the number of consecutive passes without any alpha
	// update required to declare convergence (default 5).
	MaxPasses int
	// MaxIter caps total passes over the data (default 200).
	MaxIter int
	// Seed drives the randomized working-set selection.
	Seed int64
}

func (c *Config) normalize(dim int) {
	if c.Kernel == nil {
		c.Kernel = RBF{Gamma: 1 / float64(max(dim, 1))}
	}
	if c.C <= 0 {
		c.C = 1
	}
	if c.PosWeight <= 0 {
		c.PosWeight = 1
	}
	if c.Tol <= 0 {
		c.Tol = 1e-3
	}
	if c.MaxPasses <= 0 {
		c.MaxPasses = 5
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 200
	}
}

// Model is a trained SVM.
type Model struct {
	kernel  Kernel
	bias    float64
	support [][]float64 // support vectors
	coef    []float64   // alpha_i * y_i for each support vector
	stats   TrainStats
}

// TrainStats reports the cost of the SMO fit: full passes over the data
// (the SVM's analogue of epochs) and total wall-clock time.
type TrainStats struct {
	Passes  int
	Elapsed time.Duration
}

// TrainStats returns the fit-cost record of the training run.
func (m *Model) TrainStats() TrainStats { return m.stats }

// Train fits an SVM on X with binary labels y (0 = negative, 1 = positive).
func Train(x [][]float64, y []int, cfg Config) (*Model, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("svm: bad training set: %d samples, %d labels", n, len(y))
	}
	dim := len(x[0])
	for i, xi := range x {
		if len(xi) != dim {
			return nil, fmt.Errorf("svm: sample %d has dim %d, want %d", i, len(xi), dim)
		}
	}
	cfg.normalize(dim)
	// Signed labels.
	ys := make([]float64, n)
	hasPos, hasNeg := false, false
	for i, v := range y {
		switch v {
		case 0:
			ys[i] = -1
			hasNeg = true
		case 1:
			ys[i] = 1
			hasPos = true
		default:
			return nil, fmt.Errorf("svm: label %d at sample %d (want 0/1)", v, i)
		}
	}
	if !hasPos || !hasNeg {
		return nil, errors.New("svm: training set needs both classes")
	}

	ci := func(i int) float64 {
		if ys[i] > 0 {
			return cfg.C * cfg.PosWeight
		}
		return cfg.C
	}

	// Lazy kernel-row cache.
	cache := make([][]float64, n)
	krow := func(i int) []float64 {
		if cache[i] == nil {
			row := make([]float64, n)
			for j := 0; j < n; j++ {
				row[j] = cfg.Kernel.Eval(x[i], x[j])
			}
			cache[i] = row
		}
		return cache[i]
	}

	alpha := make([]float64, n)
	b := 0.0
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	decision := func(i int) float64 {
		row := krow(i)
		var s float64
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * ys[j] * row[j]
			}
		}
		return s + b
	}

	trainStart := time.Now()
	passes, iter := 0, 0
	for passes < cfg.MaxPasses && iter < cfg.MaxIter {
		changed := 0
		for i := 0; i < n; i++ {
			ei := decision(i) - ys[i]
			if !((ys[i]*ei < -cfg.Tol && alpha[i] < ci(i)) || (ys[i]*ei > cfg.Tol && alpha[i] > 0)) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := decision(j) - ys[j]
			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if ys[i] != ys[j] {
				// alpha_j - alpha_i is invariant on this pair.
				lo = math.Max(0, aj-ai)
				hi = math.Min(ci(j), ci(i)+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-ci(i))
				hi = math.Min(ci(j), ai+aj)
			}
			if lo >= hi {
				continue
			}
			kii, kjj := krow(i)[i], krow(j)[j]
			kij := krow(i)[j]
			eta := 2*kij - kii - kjj
			if eta >= 0 {
				continue
			}
			ajNew := aj - ys[j]*(ei-ej)/eta
			if ajNew > hi {
				ajNew = hi
			} else if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-7 {
				continue
			}
			aiNew := ai + ys[i]*ys[j]*(aj-ajNew)
			// Bias update (Platt).
			b1 := b - ei - ys[i]*(aiNew-ai)*kii - ys[j]*(ajNew-aj)*kij
			b2 := b - ej - ys[i]*(aiNew-ai)*kij - ys[j]*(ajNew-aj)*kjj
			switch {
			case aiNew > 0 && aiNew < ci(i):
				b = b1
			case ajNew > 0 && ajNew < ci(j):
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			alpha[i], alpha[j] = aiNew, ajNew
			changed++
		}
		iter++
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	m := &Model{
		kernel: cfg.Kernel,
		bias:   b,
		stats:  TrainStats{Passes: iter, Elapsed: time.Since(trainStart)},
	}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-9 {
			m.support = append(m.support, x[i])
			m.coef = append(m.coef, alpha[i]*ys[i])
		}
	}
	if len(m.support) == 0 {
		return nil, errors.New("svm: training produced no support vectors")
	}
	return m, nil
}

// NumSupport returns the number of support vectors.
func (m *Model) NumSupport() int { return len(m.support) }

// Decision returns the signed margin of x; positive means hotspot.
func (m *Model) Decision(x []float64) float64 {
	s := m.bias
	for i, sv := range m.support {
		s += m.coef[i] * m.kernel.Eval(sv, x)
	}
	return s
}

// Predict returns true when x is classified as a hotspot.
func (m *Model) Predict(x []float64) bool { return m.Decision(x) > 0 }
