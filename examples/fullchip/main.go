// Fullchip: train a detector on benchmark clips, then sweep it across an
// entire synthetic chip with the parallel scanner and verify the flagged
// windows with lithography simulation — the deployment workflow the
// hotspot literature targets.
//
// Run with:
//
//	go run ./examples/fullchip
package main

import (
	"fmt"
	"log"
	"time"

	hsd "github.com/golitho/hsd"
)

func main() {
	log.SetFlags(0)

	// Train on a generated benchmark.
	cfg := hsd.SmallSuiteConfig(11)
	cfg.Specs = cfg.Specs[:1]
	suite, err := hsd.GenerateSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}
	det := hsd.StandardAdaBoost()
	if err := det.Fit(hsd.FromSamples(suite.Benchmarks[0].Train.Samples)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s\n", det.Name())

	// Generate a 32 x 32 um chip and scan it.
	const edge = 32768
	chip, err := hsd.GenerateChip(99, edge, hsd.DefaultPatternStyle())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip: %d shapes over %.0f x %.0f um\n",
		chip.NumShapes(), float64(edge)/1000, float64(edge)/1000)

	t0 := time.Now()
	findings, err := hsd.Scan(chip, det, hsd.ScanConfig{SkipEmpty: true})
	if err != nil {
		log.Fatal(err)
	}
	scanTime := time.Since(t0)
	windows := (edge/512 + 1) * (edge/512 + 1)
	fmt.Printf("scanned ~%d windows in %v, flagged %d\n\n", windows, scanTime.Round(time.Millisecond), len(findings))

	// Verify the strongest findings with the simulator.
	sim, err := hsd.NewSimulator(hsd.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	confirmed, repaired := 0, 0
	limit := 10
	if len(findings) < limit {
		limit = len(findings)
	}
	for i := 0; i < limit; i++ {
		f := findings[i]
		clip, err := chip.ClipAt(f.Center, 1024, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Simulate(clip)
		if err != nil {
			log.Fatal(err)
		}
		status := "clean"
		if res.Hotspot {
			confirmed++
			status = fmt.Sprintf("CONFIRMED (%s at %v)", res.Defects[0].Type, res.Defects[0].At)
			// Close the loop: try rule-based OPC on the confirmed window.
			fix, err := hsd.CorrectClip(sim, clip, hsd.OPCConfig{})
			if err != nil {
				log.Fatal(err)
			}
			if fix.Fixed {
				repaired++
				status += fmt.Sprintf(" -> repaired in %d OPC iterations", fix.Iterations)
			} else {
				status += " -> needs rerouting (bridge)"
			}
		}
		fmt.Printf("%2d. window at %v  score=%.3f  %s\n", i+1, f.Center, f.Score, status)
	}
	if limit > 0 {
		fmt.Printf("\nverified precision of top findings: %d/%d; OPC repaired %d/%d\n",
			confirmed, limit, repaired, confirmed)
	}
}
