// Imbalance: the survey's central deep-learning lesson — hotspots are a
// tiny minority, so a plainly trained CNN underflags them. This example
// sweeps the two counter-measures (minority upsampling + mirror
// augmentation, and biased learning) and prints the recall / false-alarm
// trade-off each one buys.
//
// Run with:
//
//	go run ./examples/imbalance
package main

import (
	"fmt"
	"log"

	hsd "github.com/golitho/hsd"
)

func main() {
	log.SetFlags(0)

	cfg := hsd.SmallSuiteConfig(7)
	cfg.Specs = []hsd.BenchmarkSpec{{
		Name:  "IMB",
		Style: hsd.DefaultPatternStyle(),
		// 1:12 imbalance, the regime where plain training collapses.
		TrainHS: 30, TrainNHS: 360,
		TestHS: 20, TestNHS: 240,
	}}
	suite, err := hsd.GenerateSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bench := suite.Benchmarks[0]
	train := hsd.FromSamples(bench.Train.Samples)
	test := hsd.FromSamples(bench.Test.Samples)

	type study struct {
		name    string
		biasEps float64
		augment hsd.AugmentConfig
	}
	studies := []study{
		{"plain CNN (no treatment)", 0, hsd.AugmentConfig{}},
		{"upsample x4", 0, hsd.AugmentConfig{UpsampleFactor: 4}},
		{"upsample x4 + mirror", 0, hsd.AugmentConfig{UpsampleFactor: 4, Mirror: true}},
		{"biased learning eps=0.25", 0.25, hsd.AugmentConfig{}},
		{"both treatments", 0.25, hsd.AugmentConfig{UpsampleFactor: 4, Mirror: true}},
	}

	fmt.Printf("%-28s %9s %12s %7s\n", "treatment", "recall", "false alarms", "F1")
	for i, s := range studies {
		det := hsd.StandardCNN(int64(100+i), s.biasEps, "cnn")
		res, err := hsd.Evaluate(det, bench.Name, train, test, hsd.EvalOptions{Augment: s.augment})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8.1f%% %12d %7.3f\n",
			s.name, 100*res.Accuracy(), res.FalseAlarms(), res.Confusion.F1())
	}
	fmt.Println("\nThe pattern to look for: each treatment trades false alarms for")
	fmt.Println("recall; missing a hotspot costs a respin, a false alarm only costs")
	fmt.Println("one extra lithography simulation.")
}
