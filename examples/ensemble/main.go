// Ensemble: combine heterogeneous detectors (pattern matching, AdaBoost,
// random forest) by majority voting and compare the ensemble with its
// members — the classic variance-reduction trick applied to hotspot
// detection.
//
// Run with:
//
//	go run ./examples/ensemble
package main

import (
	"fmt"
	"log"

	hsd "github.com/golitho/hsd"
)

func main() {
	log.SetFlags(0)

	cfg := hsd.SmallSuiteConfig(21)
	cfg.Specs = []hsd.BenchmarkSpec{{
		Name:    "ENS",
		Style:   hsd.DefaultPatternStyle(),
		TrainHS: 40, TrainNHS: 200,
		TestHS: 20, TestNHS: 150,
	}}
	suite, err := hsd.GenerateSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bench := suite.Benchmarks[0]
	train := hsd.FromSamples(bench.Train.Samples)
	test := hsd.FromSamples(bench.Test.Samples)

	members := []hsd.Detector{
		hsd.StandardFuzzyPM(),
		hsd.StandardAdaBoost(),
		hsd.StandardForest(3),
	}
	fmt.Printf("%-40s %8s %6s %6s\n", "detector", "recall", "FA", "F1")
	for _, det := range members {
		res, err := hsd.Evaluate(det, bench.Name, train, test, hsd.EvalOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s %7.1f%% %6d %6.3f\n",
			det.Name(), 100*res.Accuracy(), res.FalseAlarms(), res.Confusion.F1())
	}

	// The ensemble fits fresh members on the same data and votes.
	ens := hsd.NewEnsemble(
		hsd.StandardFuzzyPM(),
		hsd.StandardAdaBoost(),
		hsd.StandardForest(3),
	)
	res, err := hsd.Evaluate(ens, bench.Name, train, test, hsd.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-40s %7.1f%% %6d %6.3f\n",
		"majority ensemble", 100*res.Accuracy(), res.FalseAlarms(), res.Confusion.F1())
	fmt.Println("\nMajority voting trims the false alarms of the noisy members while")
	fmt.Println("keeping most of the recall: the precision/recall balance (F1) is the")
	fmt.Println("number to watch.")
}
