// Lithosim: drive the lithography oracle directly — build two layout
// patterns (one safe, one aggressive), render their aerial images as
// ASCII art, and show how process corners turn tight geometry into
// bridge/neck defects. This is the physics every detector in this
// repository is trying to approximate.
//
// Run with:
//
//	go run ./examples/lithosim
package main

import (
	"fmt"
	"log"

	hsd "github.com/golitho/hsd"
)

func main() {
	log.SetFlags(0)

	sim, err := hsd.NewSimulator(hsd.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}

	show(sim, "safe pair: two 100 nm lines, 120 nm apart", [][4]int{
		{0, 380, 1024, 480},
		{0, 600, 1024, 700},
	})
	show(sim, "hotspot pair: two 100 nm lines, 36 nm apart", [][4]int{
		{0, 400, 1024, 500},
		{0, 536, 1024, 636},
	})
	show(sim, "hotspot: 48 nm line (below the resolution limit)", [][4]int{
		{0, 488, 1024, 536},
	})
}

func show(sim *hsd.Simulator, title string, rects [][4]int) {
	l := hsd.NewLayout("demo")
	for _, r := range rects {
		if err := l.AddRect(hsd.R(r[0], r[1], r[2], r[3])); err != nil {
			log.Fatal(err)
		}
	}
	clip, err := l.ClipAt(hsd.Pt(512, 512), 1024, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Simulate(clip)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s ===\n", title)
	fmt.Printf("hotspot: %v   PV band: %.0f nm^2\n", res.Hotspot, res.PVBandArea)
	for _, d := range res.Defects {
		fmt.Printf("  defect: %-6s at %v (corner %s)\n", d.Type, d.At, d.Corner)
	}

	// ASCII aerial image of the window centre rows.
	mask, err := hsd.RasterizeClip(clip, 8)
	if err != nil {
		log.Fatal(err)
	}
	aerial := sim.AerialImage(mask)
	fmt.Println("aerial image around the core (columns 40-88, '#'>=0.5, '+'>=0.35, '.'>=0.2):")
	for y := 52; y < 76; y += 2 {
		row := "  "
		for x := 40; x < 88; x++ {
			v := aerial.At(x, y)
			switch {
			case v >= 0.5:
				row += "#"
			case v >= 0.35:
				row += "+"
			case v >= 0.2:
				row += "."
			default:
				row += " "
			}
		}
		fmt.Println(row)
	}
	fmt.Println()
}
