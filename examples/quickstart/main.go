// Quickstart: generate a small benchmark, train one shallow and one deep
// hotspot detector, and compare them under the ICCAD-2012 protocol.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	hsd "github.com/golitho/hsd"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a small synthetic benchmark (deterministic in the seed).
	cfg := hsd.SmallSuiteConfig(1)
	cfg.Specs = []hsd.BenchmarkSpec{{
		Name:  "Q1",
		Style: hsd.DefaultPatternStyle(),
		// Enough data for the CNN to be meaningful, small enough to run
		// in well under a minute.
		TrainHS: 60, TrainNHS: 240,
		TestHS: 25, TestNHS: 150,
	}}
	t0 := time.Now()
	suite, err := hsd.GenerateSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bench := suite.Benchmarks[0]
	trHS, trNHS := bench.Train.Counts()
	teHS, teNHS := bench.Test.Counts()
	fmt.Printf("benchmark %s: train %d HS / %d NHS, test %d HS / %d NHS (generated in %v)\n\n",
		bench.Name, trHS, trNHS, teHS, teNHS, time.Since(t0).Round(time.Millisecond))

	train := hsd.FromSamples(bench.Train.Samples)
	test := hsd.FromSamples(bench.Test.Samples)

	// 2. The oracle: every label comes from lithography simulation.
	sim, err := hsd.NewSimulator(hsd.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Simulate(test[0].Clip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle check on first test clip: hotspot=%v, defects=%d, PV band=%.0f nm^2\n\n",
		res.Hotspot, len(res.Defects), res.PVBandArea)

	// 3. Train and evaluate a shallow and a deep detector.
	for _, spec := range []hsd.DetectorSpec{
		{Name: "AdaBoost (shallow)", New: hsd.StandardAdaBoost},
		{Name: "CNN-biased (deep)",
			New:     func() hsd.Detector { return hsd.StandardCNN(1, 0.25, "cnn-biased") },
			Augment: hsd.StandardAugment()},
	} {
		det := spec.New()
		r, err := hsd.Evaluate(det, bench.Name, train, test, hsd.EvalOptions{
			Sim:     sim,
			Augment: spec.Augment,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s accuracy=%.1f%%  false alarms=%d  AUC=%.3f  ODST=%v (vs %v full sim)\n",
			spec.Name, 100*r.Accuracy(), r.FalseAlarms(), r.AUC,
			r.ODST().Round(time.Millisecond), r.FullSimTime.Round(time.Millisecond))
	}
}
