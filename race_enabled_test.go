//go:build race

package hsd

// raceEnabled reports whether the race detector instruments this build.
// The end-to-end zoo test is wall-clock-bound (~10x slower under race)
// and exceeds go test's default package timeout, so it skips itself;
// concurrency coverage under -race lives in the focused package tests.
const raceEnabled = true
