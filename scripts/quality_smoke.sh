#!/usr/bin/env sh
# quality_smoke.sh — end-to-end model-quality observability gate.
#
# Drives the full drift story against a live hsdserve with a fixed seed:
#
#   1. hsdtrain -save -quality-baseline auto writes the model plus its
#      <model>.qb score-distribution sidecar;
#   2. hsdserve boots with -quality; /debug/quality answers with alert
#      state ok and no baseline;
#   3. POST /admin/reload swaps the trained model in and the registry
#      installs the sidecar baseline (has_baseline flips true);
#   4. an injected covariate shift (repeatedly scoring one pathological
#      clip far from the training distribution) pushes PSI over the
#      drift threshold: the alert pages within the fast window, the
#      drift gauge and event counter land on /metrics, and the trace
#      store retains a quality.drift trace;
#   5. POST /admin/rollback resets the monitor's windows; with clean
#      (empty) windows the alert clears to ok after ClearHold.
#
# Sub-windows are shrunk to 1s so the page and the hysteresis clear both
# happen within seconds.

set -eu

ADDR=127.0.0.1:18092
WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
	[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "quality smoke: generating suite"
go run ./cmd/benchgen -small -seed 7 -out "$WORK/suite.gob" >/dev/null

echo "quality smoke: building hsdtrain + hsdserve"
go build -o "$WORK/hsdtrain" ./cmd/hsdtrain
go build -o "$WORK/hsdserve" ./cmd/hsdserve

echo "quality smoke: training model + baseline sidecar"
"$WORK/hsdtrain" -suite "$WORK/suite.gob" -detector MLP -seed 1 \
	-save "$WORK/candidate.hsdnn" -quality-baseline auto \
	>"$WORK/train.log" 2>&1
grep -q 'quality baseline' "$WORK/train.log"
[ -s "$WORK/candidate.hsdnn.qb" ]

echo "quality smoke: booting hsdserve with -quality"
"$WORK/hsdserve" -suite "$WORK/suite.gob" -detector MLP -seed 1 \
	-quality -quality-window 1s -drift-threshold 0.25 -slo-target 0.9 \
	-addr "$ADDR" >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

ready=""
i=0
while [ $i -lt 120 ]; do
	if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
		ready=1
		break
	fi
	sleep 0.5
	i=$((i + 1))
done
if [ -z "$ready" ]; then
	echo "quality smoke: server never became ready" >&2
	cat "$WORK/serve.log" >&2
	exit 1
fi

# Fresh monitor: no sketches yet, alert ok.
curl -fsS "http://$ADDR/debug/quality" >"$WORK/q0.json"
grep -q '"state":0' "$WORK/q0.json"

# Traffic before any baseline: sketches exist but carry no drift score.
printf 'GLT 1\nLAYOUT smoke\nRECT 0 400 1024 500\nRECT 0 536 1024 636\nEND\n' >"$WORK/clip.glt"
i=0
while [ $i -lt 10 ]; do
	curl -fsS --data-binary @"$WORK/clip.glt" "http://$ADDR/score" >/dev/null
	i=$((i + 1))
done
curl -fsS "http://$ADDR/debug/quality" >"$WORK/q1.json"
grep -q '"has_baseline":false' "$WORK/q1.json"

# Hot reload installs the model's baseline sidecar alongside the swap.
curl -fsS -X POST -d "{\"path\":\"$WORK/candidate.hsdnn\"}" \
	"http://$ADDR/admin/reload" >"$WORK/reload.json"
grep -q '"ok":true' "$WORK/reload.json"
curl -fsS "http://$ADDR/debug/quality" >"$WORK/q2.json"
grep -q '"has_baseline":true' "$WORK/q2.json"

# Covariate shift: one pathological near-empty clip, nothing like the
# training layouts, scored repeatedly. All live mass lands in one
# histogram bin, so PSI against the training baseline blows through the
# threshold and the alert pages within the 3s fast window.
printf 'GLT 1\nLAYOUT shift\nRECT 0 0 8 8\nEND\n' >"$WORK/shift.glt"
paged=""
round=0
while [ $round -lt 20 ]; do
	i=0
	while [ $i -lt 20 ]; do
		curl -fsS --data-binary @"$WORK/shift.glt" "http://$ADDR/score" >/dev/null
		i=$((i + 1))
	done
	if curl -fsS "http://$ADDR/debug/quality" | grep -q '"state":2'; then
		paged=1
		break
	fi
	round=$((round + 1))
done
if [ -z "$paged" ]; then
	echo "quality smoke: injected shift never paged the alert" >&2
	curl -fsS "http://$ADDR/debug/quality" >&2 || true
	cat "$WORK/serve.log" >&2
	exit 1
fi

# The page, the drift score, and the drift event are all observable.
curl -fsS "http://$ADDR/metrics" >"$WORK/metrics.txt"
grep -q 'hotspot_quality_alert_state 2' "$WORK/metrics.txt"
grep -q 'hotspot_drift_score{' "$WORK/metrics.txt"
grep -Eq 'hotspot_quality_drift_events_total [1-9]' "$WORK/metrics.txt"
curl -fsS "http://$ADDR/debug/traces" | grep -q 'quality.drift'

# Rollback resets the monitor's windows; with the shifted traffic gone
# the alert steps down to ok after the ClearHold hysteresis (2s at this
# window size), never instantly.
curl -fsS -X POST "http://$ADDR/admin/rollback" >"$WORK/rollback.json"
cleared=""
i=0
while [ $i -lt 60 ]; do
	if curl -fsS "http://$ADDR/debug/quality" | grep -q '"state":0'; then
		cleared=1
		break
	fi
	sleep 0.5
	i=$((i + 1))
done
if [ -z "$cleared" ]; then
	echo "quality smoke: alert never cleared after rollback" >&2
	curl -fsS "http://$ADDR/debug/quality" >&2 || true
	cat "$WORK/serve.log" >&2
	exit 1
fi
curl -fsS "http://$ADDR/metrics" | grep -q 'hotspot_quality_alert_state 0'

echo "quality smoke: ok"
