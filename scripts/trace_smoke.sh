#!/usr/bin/env sh
# trace_smoke.sh — end-to-end tracing gate.
#
# Boots hsdserve with tracing and a private debug listener, scores one
# GLT clip, and asserts:
#
#   1. /debug/traces returns the /score trace with non-empty child
#      spans (raster, features, inference under the http root);
#   2. /debug/traces/chrome emits parseable trace_event JSON;
#   3. /metrics exposes the hotspot_stage_seconds decomposition;
#   4. the pprof index answers on the debug listener.
#
# AdaBoost is the detector: it trains in seconds and its scoring path
# exercises the full raster -> features -> inference pipeline.

set -eu

ADDR=127.0.0.1:18080
DEBUG_ADDR=127.0.0.1:18081
WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
	[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "trace smoke: generating suite"
go run ./cmd/benchgen -small -seed 7 -out "$WORK/suite.gob" >/dev/null

echo "trace smoke: booting hsdserve"
go build -o "$WORK/hsdserve" ./cmd/hsdserve
"$WORK/hsdserve" -suite "$WORK/suite.gob" -detector AdaBoost \
	-addr "$ADDR" -debug-addr "$DEBUG_ADDR" >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

ready=""
i=0
while [ $i -lt 120 ]; do
	if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
		ready=1
		break
	fi
	sleep 0.5
	i=$((i + 1))
done
if [ -z "$ready" ]; then
	echo "trace smoke: server never became ready" >&2
	cat "$WORK/serve.log" >&2
	exit 1
fi

printf 'GLT 1\nLAYOUT smoke\nRECT 0 400 1024 500\nRECT 0 536 1024 636\nEND\n' >"$WORK/clip.glt"
curl -fsS --data-binary @"$WORK/clip.glt" "http://$ADDR/score" >"$WORK/score.json"
grep -q '"score"' "$WORK/score.json"

# The /score trace must be retained with the pipeline stages as child
# spans of the http root.
curl -fsS "http://$ADDR/debug/traces?limit=16" >"$WORK/traces.json"
for span in 'http /score' raster features inference; do
	if ! grep -q "\"$span\"" "$WORK/traces.json"; then
		echo "trace smoke: /debug/traces missing span \"$span\"" >&2
		cat "$WORK/traces.json" >&2
		exit 1
	fi
done
grep -q '"parentId"' "$WORK/traces.json" # child spans, not just roots

# Chrome export parses and carries complete ("X") events.
curl -fsS "http://$ADDR/debug/traces/chrome?limit=16" >"$WORK/chrome.json"
grep -q '"ph":"X"' "$WORK/chrome.json" || grep -q '"ph": *"X"' "$WORK/chrome.json"

# Stage attribution reached the metrics registry.
curl -fsS "http://$ADDR/metrics" >"$WORK/metrics.txt"
grep -q 'hotspot_stage_seconds_count{stage="inference"' "$WORK/metrics.txt"

# pprof answers on the private listener only.
curl -fsS "http://$DEBUG_ADDR/debug/pprof/" >"$WORK/pprof.html"
grep -qi pprof "$WORK/pprof.html"
if curl -fsS "http://$ADDR/debug/pprof/" >/dev/null 2>&1; then
	echo "trace smoke: pprof leaked onto the public listener" >&2
	exit 1
fi

echo "trace smoke: ok"
