#!/usr/bin/env sh
# scan_smoke.sh — end-to-end kill-resume gate for the scan farm.
#
# Runs hsdscan three times over the same deterministic chip:
#
#   1. an uninterrupted reference scan writing full.txt;
#   2. a journaled scan that is SIGKILLed as soon as the journal shows
#      at least one completed shard (a real crash: no cleanup, no
#      flush, the journal is whatever fsync made durable);
#   3. the same scan with -resume, writing resumed.txt.
#
# The gate: resumed.txt must be byte-identical to full.txt, and the
# resumed run must have actually skipped work (1 <= resumed shards <
# total), otherwise the kill landed after completion and the pass
# would be vacuous.

set -eu

WORK=$(mktemp -d)
SCAN_PID=""
cleanup() {
	[ -n "$SCAN_PID" ] && kill -9 "$SCAN_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# One worker and one grid row per shard stretch the scan to a few
# seconds and maximize the number of journal records, so the kill has a
# wide window to land mid-scan.
EDGE=32768
SCAN_ARGS="-detector AdaBoost -seed 1 -gen-seed 42 -gen-edge $EDGE \
	-workers 1 -shard-rows 1 -top 0"

echo "scan smoke: generating suite"
go run ./cmd/benchgen -small -seed 7 -out "$WORK/suite.gob" >/dev/null

echo "scan smoke: building hsdscan"
go build -o "$WORK/hsdscan" ./cmd/hsdscan

echo "scan smoke: uninterrupted reference scan"
# shellcheck disable=SC2086
"$WORK/hsdscan" -suite "$WORK/suite.gob" $SCAN_ARGS \
	-findings "$WORK/full.txt" >"$WORK/ref.log" 2>&1

echo "scan smoke: journaled scan, killing mid-flight"
# shellcheck disable=SC2086
"$WORK/hsdscan" -suite "$WORK/suite.gob" $SCAN_ARGS \
	-journal "$WORK/scan.journal" \
	-findings "$WORK/interrupted.txt" >"$WORK/kill.log" 2>&1 &
SCAN_PID=$!

# The journal header is written at creation; a completed shard record
# pushes the file past ~200 bytes. Kill on the first sign of one.
killed=""
i=0
while [ $i -lt 600 ]; do
	if ! kill -0 "$SCAN_PID" 2>/dev/null; then
		break # scan finished before we could kill it
	fi
	size=0
	if [ -f "$WORK/scan.journal" ]; then
		size=$(wc -c <"$WORK/scan.journal")
	fi
	if [ "$size" -gt 200 ]; then
		kill -9 "$SCAN_PID"
		killed=1
		break
	fi
	sleep 0.05
	i=$((i + 1))
done
wait "$SCAN_PID" 2>/dev/null || true
SCAN_PID=""
if [ -z "$killed" ]; then
	echo "scan smoke: scan exited before the kill landed; gate is vacuous" >&2
	cat "$WORK/kill.log" >&2
	exit 1
fi

echo "scan smoke: resuming from the torn journal"
# shellcheck disable=SC2086
"$WORK/hsdscan" -suite "$WORK/suite.gob" $SCAN_ARGS \
	-journal "$WORK/scan.journal" -resume \
	-findings "$WORK/resumed.txt" >"$WORK/resume.log" 2>&1

# The resume must have skipped at least one shard but not all of them.
resumed=$(sed -n 's/^shards: [0-9]* done (\([0-9]*\) resumed from journal).*/\1/p' "$WORK/resume.log")
total=$(sed -n 's/^resuming from .*: \([0-9]*\) shards already journaled/\1/p' "$WORK/resume.log")
if [ -z "$resumed" ] || [ "$resumed" -lt 1 ]; then
	echo "scan smoke: resume skipped no shards (resumed=$resumed); kill landed too early or journal was lost" >&2
	cat "$WORK/resume.log" >&2
	exit 1
fi
grep -q 'quarantined' "$WORK/resume.log" || {
	echo "scan smoke: resume log missing shard summary" >&2
	cat "$WORK/resume.log" >&2
	exit 1
}
echo "scan smoke: resumed $resumed journaled shards (journal had $total)"

if ! diff "$WORK/full.txt" "$WORK/resumed.txt" >"$WORK/findings.diff"; then
	echo "scan smoke: kill-resume findings diverge from uninterrupted scan:" >&2
	head -20 "$WORK/findings.diff" >&2
	exit 1
fi
n=$(wc -l <"$WORK/full.txt")
echo "scan smoke: ok ($n findings byte-identical across kill-resume)"
