#!/bin/sh
# scripts/bench_gate.sh — batched-throughput regression gate.
#
# Re-measures the serial per-sample scoring loop and the batched
# inference engine (BenchmarkPredictBatch/serial-score and /batch-w1)
# and compares the serial/batch speedup RATIO against the ratio of the
# last committed entries in BENCH_inference.json. Comparing ratios
# instead of raw ns/op makes the gate machine-independent: a slower box
# slows both sides, but losing more than 10% of the batched path's
# relative advantage over the serial loop fails the gate.
set -eu
cd "$(dirname "$0")/.."

fresh=$(go test -timeout 10m -bench 'PredictBatch/(serial-score$|batch-w1$)' -benchtime 300ms -run XXX .)
echo "$fresh" | grep '^Benchmark' || { echo "bench-gate: no benchmark output" >&2; exit 1; }

now_serial=$(echo "$fresh" | awk '$1 ~ /PredictBatch\/serial-score(-[0-9]+)?$/ {print $3; exit}')
now_batch=$(echo "$fresh" | awk '$1 ~ /PredictBatch\/batch-w1(-[0-9]+)?$/ {print $3; exit}')
if [ -z "$now_serial" ] || [ -z "$now_batch" ]; then
	echo "bench-gate: could not parse fresh benchmark output" >&2
	exit 1
fi

base_serial=$(grep -o '"name":"BenchmarkPredictBatch/serial-score\(-[0-9]*\)\{0,1\}","ns_per_op":[0-9.e+]*' BENCH_inference.json | tail -1 | sed 's/.*ns_per_op"://')
base_batch=$(grep -o '"name":"BenchmarkPredictBatch/batch-w1\(-[0-9]*\)\{0,1\}","ns_per_op":[0-9.e+]*' BENCH_inference.json | tail -1 | sed 's/.*ns_per_op"://')
if [ -z "$base_serial" ] || [ -z "$base_batch" ]; then
	echo "bench-gate: no committed baseline in BENCH_inference.json; run run_bench.sh to record one (gate skipped)"
	exit 0
fi

awk -v ns="$now_serial" -v nb="$now_batch" -v bs="$base_serial" -v bb="$base_batch" 'BEGIN {
	now = ns / nb
	base = bs / bb
	printf "bench-gate: serial/batch speedup now %.3fx, committed baseline %.3fx\n", now, base
	if (now < base * 0.9) {
		printf "bench-gate: FAIL — batched inference lost >10%% of its advantage over the serial loop\n"
		exit 1
	}
	print "bench-gate: ok"
}'
