#!/usr/bin/env sh
# reload_smoke.sh — end-to-end hot-reload gate.
#
# Boots hsdserve with a neural (MLP) primary and a watched model path,
# trains the same model with hsdtrain -save, and asserts:
#
#   1. GET /admin/model reports the boot generation;
#   2. POST /admin/reload gates and swaps the candidate (generation 2)
#      and /score is served by the new generation;
#   3. dropping a model file on the watched path triggers an automatic
#      reload (generation 3) without any admin call;
#   4. /metrics exposes hotspot_model_generation and
#      hotspot_reloads_total{outcome="swapped"};
#   5. a corrupt model file is refused (500, load_failed counted) and
#      the server keeps serving the live generation.
#
# The candidate is trained with the same seed as the live model, so the
# validation gate's golden-set deltas are exactly zero and the smoke
# run is deterministic.

set -eu

ADDR=127.0.0.1:18090
WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
	[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "reload smoke: generating suite"
go run ./cmd/benchgen -small -seed 7 -out "$WORK/suite.gob" >/dev/null

echo "reload smoke: building hsdtrain + hsdserve"
go build -o "$WORK/hsdtrain" ./cmd/hsdtrain
go build -o "$WORK/hsdserve" ./cmd/hsdserve

echo "reload smoke: training candidate model"
"$WORK/hsdtrain" -suite "$WORK/suite.gob" -detector MLP -seed 1 \
	-save "$WORK/candidate.hsdnn" >"$WORK/train.log" 2>&1

echo "reload smoke: booting hsdserve with -model-watch"
"$WORK/hsdserve" -suite "$WORK/suite.gob" -detector MLP -seed 1 \
	-model-watch "$WORK/watched.hsdnn" -model-watch-interval 200ms \
	-addr "$ADDR" >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

ready=""
i=0
while [ $i -lt 120 ]; do
	if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
		ready=1
		break
	fi
	sleep 0.5
	i=$((i + 1))
done
if [ -z "$ready" ]; then
	echo "reload smoke: server never became ready" >&2
	cat "$WORK/serve.log" >&2
	exit 1
fi

curl -fsS "http://$ADDR/admin/model" >"$WORK/model1.json"
grep -q '"generation":1' "$WORK/model1.json"

# Admin reload: gate passes (identical model), generation bumps to 2.
curl -fsS -X POST -d "{\"path\":\"$WORK/candidate.hsdnn\"}" \
	"http://$ADDR/admin/reload" >"$WORK/reload.json"
grep -q '"generation":2' "$WORK/reload.json"
grep -q '"ok":true' "$WORK/reload.json"

# The swapped generation serves.
printf 'GLT 1\nLAYOUT smoke\nRECT 0 400 1024 500\nRECT 0 536 1024 636\nEND\n' >"$WORK/clip.glt"
curl -fsS --data-binary @"$WORK/clip.glt" "http://$ADDR/score" >"$WORK/score.json"
grep -q '"score"' "$WORK/score.json"

# Watched-path reload: dropping the file triggers generation 3 without
# any admin call.
cp "$WORK/candidate.hsdnn" "$WORK/watched.hsdnn"
gen3=""
i=0
while [ $i -lt 100 ]; do
	if curl -fsS "http://$ADDR/admin/model" | grep -q '"generation":3'; then
		gen3=1
		break
	fi
	sleep 0.2
	i=$((i + 1))
done
if [ -z "$gen3" ]; then
	echo "reload smoke: watcher never reloaded the dropped model" >&2
	curl -fsS "http://$ADDR/admin/model" >&2 || true
	cat "$WORK/serve.log" >&2
	exit 1
fi

# Reload decisions are observable.
curl -fsS "http://$ADDR/metrics" >"$WORK/metrics.txt"
grep -q 'hotspot_model_generation 3' "$WORK/metrics.txt"
grep -q 'hotspot_reloads_total{outcome="swapped"} 2' "$WORK/metrics.txt"

# A corrupt model is refused and the live generation keeps serving.
head -c 64 /dev/urandom >"$WORK/garbage.hsdnn"
code=$(curl -s -o "$WORK/badreload.json" -w '%{http_code}' -X POST \
	-d "{\"path\":\"$WORK/garbage.hsdnn\"}" "http://$ADDR/admin/reload")
if [ "$code" != "500" ] && [ "$code" != "422" ]; then
	echo "reload smoke: corrupt model reload returned $code, want 500/422" >&2
	cat "$WORK/badreload.json" >&2
	exit 1
fi
curl -fsS "http://$ADDR/admin/model" | grep -q '"generation":3'
curl -fsS "http://$ADDR/metrics" | grep -Eq 'hotspot_reloads_total\{outcome="(load_failed|rejected)"\} 1'
curl -fsS --data-binary @"$WORK/clip.glt" "http://$ADDR/score" | grep -q '"score"'

echo "reload smoke: ok"
