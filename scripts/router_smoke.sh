#!/bin/sh
# scripts/router_smoke.sh — router frontier gate.
#
# Trains the routed cascade (pm-fuzzy → boost → cnn) and its members on
# a fixed-seed benchmark and asserts the deterministic half of the
# frontier claim (TestRouterFrontierSmoke): router recall no worse than
# the boost-only row AND no worse than the deep CNN row, with the deep
# stage seeing only the escalated band. Runs under -race so the routed
# scoring paths are exercised under the detector.
#
# Wall-clock ODST dominance is recorded by run_bench.sh chunk G into
# BENCH_router.json, not asserted here (CI boxes are loaded).
set -eu
cd "$(dirname "$0")/.."

out=$(HSD_ROUTER_SMOKE=1 go test -timeout 20m -run 'TestRouterFrontierSmoke' -race -v ./internal/experiments/ 2>&1) || {
	echo "$out"
	echo "router-smoke: FAIL" >&2
	exit 1
}
echo "$out" | grep -v '^=== RUN'
echo "router-smoke: ok"
