#!/usr/bin/env sh
# learn_smoke.sh — end-to-end kill-resume gate for the active-learning
# data engine (hsdlearn + internal/datengine).
#
# Runs the full mine -> select -> label -> retrain -> gate -> ship cycle
# three ways over the same deterministic suite:
#
#   1. an uninterrupted reference cycle shipping ref/model-000.gob;
#   2. the same cycle with -label-delay widening the labeling window,
#      SIGKILLed mid-label (a real crash: no cleanup, no flush, the WAL
#      is whatever fsync made durable);
#   3. hsdlearn -resume over the torn WAL, which must pick up the
#      durable labels instead of redoing them and ship the batch.
#
# The gate: the resumed run must report resumed labels >= 1 (otherwise
# the kill landed outside the labeling window and the pass would be
# vacuous), its shipped model must pass the same golden-set gate, and
# the model file must be BYTE-identical to the uninterrupted run's.
# Mining the detector's own uncertainty band doubles as the drift
# injection: the band is exactly where the base model is least sure.

set -eu

WORK=$(mktemp -d)
LEARN_PID=""
cleanup() {
	[ -n "$LEARN_PID" ] && kill -9 "$LEARN_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

LEARN_ARGS="-detector MLP -seed 1 -batch 5 -cycles 1"

echo "learn smoke: generating suite"
go run ./cmd/benchgen -small -seed 7 -out "$WORK/suite.gob" >/dev/null

echo "learn smoke: building hsdlearn"
go build -o "$WORK/hsdlearn" ./cmd/hsdlearn

echo "learn smoke: uninterrupted reference cycle"
# shellcheck disable=SC2086
"$WORK/hsdlearn" -suite "$WORK/suite.gob" $LEARN_ARGS \
	-wal "$WORK/ref.wal" -model-dir "$WORK/ref" >"$WORK/ref.log" 2>&1
grep -q 'outcome=shipped' "$WORK/ref.log" || {
	echo "learn smoke: reference cycle did not ship" >&2
	cat "$WORK/ref.log" >&2
	exit 1
}

echo "learn smoke: -resume on a missing WAL must fail loudly"
if "$WORK/hsdlearn" -suite "$WORK/suite.gob" $LEARN_ARGS \
	-wal "$WORK/nosuch.wal" -model-dir "$WORK/x" -resume >/dev/null 2>&1; then
	echo "learn smoke: -resume on a missing WAL silently started fresh" >&2
	exit 1
fi

echo "learn smoke: journaled cycle, killing mid-label"
# shellcheck disable=SC2086
"$WORK/hsdlearn" -suite "$WORK/suite.gob" $LEARN_ARGS \
	-wal "$WORK/learn.wal" -model-dir "$WORK/killed" \
	-label-delay 700ms >"$WORK/kill.log" 2>&1 &
LEARN_PID=$!

# Wait for batch selection (journaled before labeling starts), then let
# roughly two of the five delayed labels land and kill the process.
killed=""
i=0
while [ $i -lt 1200 ]; do
	if ! kill -0 "$LEARN_PID" 2>/dev/null; then
		break # cycle finished before we could kill it
	fi
	if grep -q 'selected' "$WORK/kill.log" 2>/dev/null; then
		sleep 1.5
		kill -9 "$LEARN_PID" 2>/dev/null && killed=1
		break
	fi
	sleep 0.05
	i=$((i + 1))
done
wait "$LEARN_PID" 2>/dev/null || true
LEARN_PID=""
if [ -z "$killed" ]; then
	echo "learn smoke: cycle exited before the kill landed; gate is vacuous" >&2
	cat "$WORK/kill.log" >&2
	exit 1
fi

echo "learn smoke: running hsdlearn -resume over the torn WAL"
# shellcheck disable=SC2086
"$WORK/hsdlearn" -suite "$WORK/suite.gob" $LEARN_ARGS \
	-wal "$WORK/learn.wal" -model-dir "$WORK/killed" \
	-resume >"$WORK/resume.log" 2>&1

resumed=$(sed -n 's/.*(resumed \([0-9]*\)).*/\1/p' "$WORK/resume.log")
if [ -z "$resumed" ] || [ "$resumed" -lt 1 ]; then
	echo "learn smoke: resume replayed no durable labels (resumed=${resumed:-none}); kill landed outside the labeling window" >&2
	cat "$WORK/resume.log" >&2
	exit 1
fi
grep -q 'outcome=shipped' "$WORK/resume.log" || {
	echo "learn smoke: resumed cycle did not ship" >&2
	cat "$WORK/resume.log" >&2
	exit 1
}
echo "learn smoke: resumed $resumed durable labels from the torn WAL"

if ! cmp "$WORK/ref/model-000.gob" "$WORK/killed/model-000.gob"; then
	echo "learn smoke: shipped model differs from the uninterrupted run" >&2
	exit 1
fi
echo "learn smoke: ok (kill -9 mid-label resumed to a byte-identical shipped model)"
