package hsd

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// suiteFileVersion guards the on-disk suite format.
const suiteFileVersion = 1

type suiteFile struct {
	Version int
	Suite   *Suite
}

// SaveSuite serializes a generated benchmark suite (gob encoding). Suites
// are deterministic in their seed, so this is a cache, not the source of
// truth — but a cached suite loads orders of magnitude faster than
// re-running the oracle.
func SaveSuite(w io.Writer, s *Suite) error {
	if err := gob.NewEncoder(w).Encode(suiteFile{Version: suiteFileVersion, Suite: s}); err != nil {
		return fmt.Errorf("hsd: encode suite: %w", err)
	}
	return nil
}

// SaveSuiteFile writes a suite to path crash-safely: the bytes go to a
// temp file in the same directory, are fsynced, and atomically renamed
// over path, so an interrupted save never leaves a torn cache behind.
func SaveSuiteFile(path string, s *Suite) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("hsd: create temp file: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := SaveSuite(tmp, s); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("hsd: fsync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("hsd: close %s: %w", tmp.Name(), err)
	}
	name := tmp.Name()
	tmp = nil // committed: disable the deferred cleanup
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("hsd: rename into place: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadSuite reads a suite saved with SaveSuite.
func LoadSuite(r io.Reader) (*Suite, error) {
	var f suiteFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("hsd: decode suite: %w", err)
	}
	if f.Version != suiteFileVersion {
		return nil, fmt.Errorf("hsd: unsupported suite file version %d", f.Version)
	}
	if f.Suite == nil {
		return nil, fmt.Errorf("hsd: suite file has no payload")
	}
	return f.Suite, nil
}
