package hsd

import (
	"encoding/gob"
	"fmt"
	"io"
)

// suiteFileVersion guards the on-disk suite format.
const suiteFileVersion = 1

type suiteFile struct {
	Version int
	Suite   *Suite
}

// SaveSuite serializes a generated benchmark suite (gob encoding). Suites
// are deterministic in their seed, so this is a cache, not the source of
// truth — but a cached suite loads orders of magnitude faster than
// re-running the oracle.
func SaveSuite(w io.Writer, s *Suite) error {
	if err := gob.NewEncoder(w).Encode(suiteFile{Version: suiteFileVersion, Suite: s}); err != nil {
		return fmt.Errorf("hsd: encode suite: %w", err)
	}
	return nil
}

// LoadSuite reads a suite saved with SaveSuite.
func LoadSuite(r io.Reader) (*Suite, error) {
	var f suiteFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("hsd: decode suite: %w", err)
	}
	if f.Version != suiteFileVersion {
		return nil, fmt.Errorf("hsd: unsupported suite file version %d", f.Version)
	}
	if f.Suite == nil {
		return nil, fmt.Errorf("hsd: suite file has no payload")
	}
	return f.Suite, nil
}
