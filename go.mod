module github.com/golitho/hsd

go 1.22
