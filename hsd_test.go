package hsd

import (
	"bytes"
	"sync"
	"testing"
)

// The facade tests share one small generated suite.
var (
	facadeOnce  sync.Once
	facadeSuite *Suite
	facadeErr   error
)

func facadeBenchmark(t *testing.T) Benchmark {
	t.Helper()
	facadeOnce.Do(func() {
		cfg := SmallSuiteConfig(2024)
		cfg.Specs = []BenchmarkSpec{{
			Name:    "F1",
			Style:   DefaultPatternStyle(),
			TrainHS: 15, TrainNHS: 60,
			TestHS: 10, TestNHS: 40,
		}}
		facadeSuite, facadeErr = GenerateSuite(cfg)
	})
	if facadeErr != nil {
		t.Fatal(facadeErr)
	}
	return facadeSuite.Benchmarks[0]
}

func TestFacadeQuickstart(t *testing.T) {
	b := facadeBenchmark(t)
	train, test := FromSamples(b.Train.Samples), FromSamples(b.Test.Samples)
	det := StandardAdaBoost()
	res, err := Evaluate(det, b.Name, train, test, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Total() != len(test) {
		t.Fatalf("scored %d of %d clips", res.Confusion.Total(), len(test))
	}
	if res.AUC <= 0.5 {
		t.Fatalf("AUC = %v, want better than chance", res.AUC)
	}
	pts, auc, err := ROC(res.Scores, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 || auc != res.AUC {
		t.Fatalf("ROC inconsistent with Evaluate: %v vs %v", auc, res.AUC)
	}
}

func TestFacadeOracle(t *testing.T) {
	sim, err := NewSimulator(DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := facadeBenchmark(t)
	// Oracle verdicts must agree with the generator labels (same oracle).
	for i, s := range b.Test.Samples[:10] {
		res, err := sim.Simulate(s.Clip)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hotspot != s.Hotspot {
			t.Fatalf("sample %d: oracle says %v, label says %v", i, res.Hotspot, s.Hotspot)
		}
	}
}

func TestZooSpecs(t *testing.T) {
	zoo := SurveyZoo(1)
	if len(zoo) < 6 {
		t.Fatalf("zoo has %d specs", len(zoo))
	}
	seen := map[string]bool{}
	deep := 0
	for _, spec := range zoo {
		if spec.Name == "" || spec.New == nil {
			t.Fatalf("malformed spec %+v", spec)
		}
		if seen[spec.Name] {
			t.Fatalf("duplicate zoo name %q", spec.Name)
		}
		seen[spec.Name] = true
		if spec.Deep {
			deep++
		}
		if d := spec.New(); d == nil || d.Name() == "" {
			t.Fatalf("spec %q builds a bad detector", spec.Name)
		}
	}
	if deep == 0 {
		t.Fatal("zoo has no deep detectors")
	}
}

func TestFacadeScan(t *testing.T) {
	b := facadeBenchmark(t)
	det := StandardFuzzyPM()
	if err := det.Fit(FromSamples(b.Train.Samples)); err != nil {
		t.Fatal(err)
	}
	chip, err := GenerateChip(9, 8192, DefaultPatternStyle())
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Scan(chip, det, ScanConfig{Workers: 4, SkipEmpty: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if !f.Center.In(R(-1024, -1024, 8192+1024, 8192+1024)) {
			t.Fatalf("finding outside chip: %v", f.Center)
		}
	}
}

func TestFacadeLayoutIO(t *testing.T) {
	l := NewLayout("io")
	if err := l.AddRect(R(0, 0, 100, 50)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLayout(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLayout(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShapes() != 1 {
		t.Fatalf("round trip lost shapes: %d", got.NumShapes())
	}
}

func TestSaveNetworkRequiresFit(t *testing.T) {
	det := StandardCNN(1, 0, "cnn")
	var buf bytes.Buffer
	if err := SaveNetwork(&buf, det); err == nil {
		t.Fatal("unfitted network saved")
	}
}

func TestFacadeEnsemble(t *testing.T) {
	b := facadeBenchmark(t)
	train, test := FromSamples(b.Train.Samples), FromSamples(b.Test.Samples)
	ens := NewEnsemble(StandardAdaBoost(), StandardSVM(3), StandardFuzzyPM())
	res, err := Evaluate(ens, b.Name, train, test, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Total() != len(test) {
		t.Fatal("ensemble did not score every clip")
	}
}

// TestSurveyShape is the package's end-to-end sanity check: on a medium
// benchmark, learned detectors must beat chance, pattern matching must
// stay false-alarm-free, and biased learning must raise CNN recall.
// Skipped under -short (it trains every detector in the zoo).
func TestSurveyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the full zoo; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("trains the full zoo; too slow under the race detector")
	}
	cfg := SmallSuiteConfig(77)
	cfg.Specs = []BenchmarkSpec{{
		Name: "M1", Style: DefaultPatternStyle(),
		TrainHS: 80, TrainNHS: 400, TestHS: 50, TestNHS: 400,
	}}
	suite, err := GenerateSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := suite.Benchmarks[0]
	train, test := FromSamples(b.Train.Samples), FromSamples(b.Test.Samples)

	results := map[string]EvalResult{}
	for _, spec := range SurveyZoo(1) {
		res, err := Evaluate(spec.New(), b.Name, train, test, EvalOptions{Augment: spec.Augment})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		results[spec.Name] = res
		t.Logf("%-12s acc=%.3f fa=%d auc=%.3f", spec.Name, res.Accuracy(), res.FalseAlarms(), res.AUC)
	}

	if fa := results["PM-exact"].FalseAlarms(); fa != 0 {
		t.Errorf("exact pattern matching produced %d false alarms", fa)
	}
	for _, name := range []string{"SVM", "AdaBoost", "MLP", "CNN", "CNN-biased"} {
		if auc := results[name].AUC; auc < 0.6 {
			t.Errorf("%s AUC = %v, want >= 0.6", name, auc)
		}
	}
	if results["CNN-biased"].Accuracy() <= results["CNN"].Accuracy() {
		t.Errorf("biased learning did not raise recall: %v vs %v",
			results["CNN-biased"].Accuracy(), results["CNN"].Accuracy())
	}
	if results["CNN-biased"].Accuracy() <= results["PM-exact"].Accuracy() {
		t.Error("deep detector did not beat pattern matching on recall")
	}
}

func TestSuiteSaveLoadRoundTrip(t *testing.T) {
	b := facadeBenchmark(t)
	var buf bytes.Buffer
	if err := SaveSuite(&buf, facadeSuite); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSuite(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != len(facadeSuite.Benchmarks) {
		t.Fatal("benchmark count differs after round trip")
	}
	gb := got.Benchmarks[0]
	if len(gb.Train.Samples) != len(b.Train.Samples) {
		t.Fatal("train size differs after round trip")
	}
	for i, s := range gb.Train.Samples {
		orig := b.Train.Samples[i]
		if s.Hotspot != orig.Hotspot || s.Family != orig.Family ||
			len(s.Clip.Shapes) != len(orig.Clip.Shapes) {
			t.Fatalf("sample %d differs after round trip", i)
		}
	}
}

func TestLoadSuiteRejectsGarbage(t *testing.T) {
	if _, err := LoadSuite(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFacadeRasterizeAndAerial(t *testing.T) {
	l := NewLayout("r")
	if err := l.AddRect(R(0, 448, 1024, 576)); err != nil {
		t.Fatal(err)
	}
	clip, err := l.ClipAt(Pt(512, 512), 1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	im, err := RasterizeClip(clip, 8)
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 128 || im.H != 128 {
		t.Fatalf("raster dims = %dx%d", im.W, im.H)
	}
	sim, err := NewSimulator(DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	aer := sim.AerialImage(im)
	if v := aer.At(64, 64); v < 0.9 {
		t.Fatalf("interior aerial intensity = %v", v)
	}
	if _, err := RasterizeClip(Clip{}, 8); err == nil {
		t.Fatal("empty clip rasterized")
	}
}

func TestFacadeForestAndLogReg(t *testing.T) {
	b := facadeBenchmark(t)
	train, test := FromSamples(b.Train.Samples), FromSamples(b.Test.Samples)
	for _, det := range []Detector{
		StandardForest(5),
		NewLogRegDetector(&GeomStats{}, LogRegConfig{Epochs: 120, LR: 0.3, PosWeight: 4, Seed: 5}),
	} {
		res, err := Evaluate(det, b.Name, train, test, EvalOptions{})
		if err != nil {
			t.Fatalf("%s: %v", det.Name(), err)
		}
		if res.Confusion.Total() != len(test) {
			t.Fatalf("%s scored %d of %d", det.Name(), res.Confusion.Total(), len(test))
		}
	}
}

func TestFacadeGDSIIRoundTrip(t *testing.T) {
	l := NewLayout("gds")
	if err := l.AddRect(R(100, 200, 300, 400)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGDSII(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGDSII(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShapes() != 1 {
		t.Fatalf("shapes = %d", got.NumShapes())
	}
}

func TestFacadeOPC(t *testing.T) {
	sim, err := NewSimulator(DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	l := NewLayout("opc")
	if err := l.AddRect(R(0, 488, 1024, 536)); err != nil { // 48 nm line
		t.Fatal(err)
	}
	clip, err := l.ClipAt(Pt(512, 512), 1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CorrectClip(sim, clip, OPCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixed {
		t.Fatalf("facade OPC failed: %+v", res.Remaining)
	}
}
